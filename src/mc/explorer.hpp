// Bounded stateless DFS exploration of a simulation's interleaving + fault
// space, in the style of SimGrid's model checker.
//
// The sim kernel is already deterministic: with a fixed seed, the only
// nondeterminism sources are (a) which same-instant wakeup delivers first
// and (b) whether a probabilistic fault rule fires.  Both now flow through
// the mc::Strategy seam (strategy.hpp), so re-executing the scenario from
// scratch while answering choose() from a recorded prefix reproduces any
// interleaving exactly -- the checker never needs to snapshot kernel state,
// it just re-runs the (cheap, virtual-time) simulation once per branch.
//
// The DFS driver:
//  * replays the current prefix, then takes the first unexplored branch at
//    the deepest frontier node (classic stateless backtracking);
//  * prunes with sleep sets when an independence relation is declared --
//    after exploring branch `a` at a node, `a` enters the sleep set of every
//    later sibling subtree and is skipped wherever it stays independent of
//    the branches taken in between (with no relation declared, exploration
//    is exhaustive);
//  * optionally prunes re-visited states by kernel state digest (off by
//    default: a hash collision would silently drop coverage);
//  * enforces depth / execution / transition budgets so unbounded scenarios
//    terminate with `complete == false` instead of hanging.
//
// Invariants are checked through the registry after every transition and at
// the end of each maximal execution; a failure becomes a Violation carrying
// the choice vector, which trace.hpp serializes for `ethergrid_mc --replay`
// and the committed regression fixtures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mc/strategy.hpp"
#include "sim/kernel.hpp"
#include "util/status.hpp"

namespace ethergrid::mc {

// One recorded choice: at a ChoicePoint of `kind` at `site` with `arity`
// alternatives, alternative `chosen` (labelled `label`) was taken.
struct Decision {
  ChoicePoint::Kind kind = ChoicePoint::Kind::kSchedule;
  std::string site;
  std::size_t chosen = 0;
  std::size_t arity = 0;
  std::string label;
};

// What an invariant sees.  `at_end` distinguishes the per-transition calls
// (simulation mid-flight) from the final call after run() returned.
struct CheckContext {
  sim::Kernel& kernel;
  bool at_end = false;
  std::uint64_t transitions = 0;
};

struct Invariant {
  std::string name;
  // Checked after every delivered wakeup as well as at the end of the
  // execution; false means only the end-of-execution call.
  bool every_transition = false;
  std::function<Status(const CheckContext&)> check;
};

class InvariantSet {
 public:
  void add(Invariant invariant) {
    invariants_.push_back(std::move(invariant));
  }
  void add(std::string name, std::function<Status(const CheckContext&)> check,
           bool every_transition = false) {
    invariants_.push_back(
        Invariant{std::move(name), every_transition, std::move(check)});
  }
  const std::vector<Invariant>& all() const { return invariants_; }

 private:
  std::vector<Invariant> invariants_;
};

// Built-in invariants every scenario gets:
//  * live_process_count() == 0 once the run drains (forall sibling-abort
//    must not leak a process);
//  * Kernel::verify_queue_accounting() holds after every transition (the
//    timer-wheel stale/live bookkeeping never drifts).
Invariant no_leaked_processes();
Invariant queue_accounting();

// Scenario-owned world state (substrates, executors, scripts).  Destroyed
// after the kernel is shut down, once per execution.  digest() may fold
// scenario state (logs, file contents) into the state-pruning hash;
// returning 0 (the default) contributes nothing.
class ScenarioWorld {
 public:
  virtual ~ScenarioWorld() = default;
  virtual std::uint64_t digest() const { return 0; }
};

// A checkable scenario: builds a fresh world around a fresh kernel for
// every execution.  build() spawns the scenario's processes (they first run
// when the explorer drives kernel.run()), installs `strategy` on any
// FaultInjector the world owns, and registers extra invariants.
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual std::string name() const = 0;
  // Per-scenario kernel option overrides (e.g. the wake-token self-test
  // turns its debug knob on).  `base` carries the explorer-level settings
  // (backend, queue) and must be preserved.
  virtual sim::KernelOptions kernel_options(sim::KernelOptions base) const {
    return base;
  }
  // Labels `a` and `b` (as surfaced in ChoicePoints) commute: executing
  // them in either order reaches the same state.  Drives sleep-set pruning;
  // the default (nothing independent) keeps exploration exhaustive.
  virtual bool independent(const std::string& a, const std::string& b) const {
    (void)a;
    (void)b;
    return false;
  }
  virtual std::unique_ptr<ScenarioWorld> build(sim::Kernel& kernel,
                                               Strategy* strategy,
                                               InvariantSet& invariants) = 0;
  // Drives one execution to completion.  The default runs the explorer's
  // kernel; a scenario whose world wraps it in a larger machine -- the
  // cross-shard scenario drives a sim::ShardedKernel whose shard kernels
  // carry the strategy -- overrides this and leaves `kernel` empty.  Must
  // run everything on the calling thread (the DFS replays prefixes, so
  // sharded worlds use threads=1 here).
  virtual void drive(sim::Kernel& kernel, ScenarioWorld& world) {
    (void)world;
    kernel.run();
  }
};

struct ExplorerOptions {
  sim::KernelOptions kernel;  // backend/queue for every execution
  std::uint64_t seed = 1;
  // Budgets.  A run that would exceed max_depth choice points or
  // max_transitions delivered wakeups is truncated (end invariants are
  // skipped for it -- the state is mid-flight) and the exploration reports
  // complete == false.
  std::size_t max_depth = 256;
  std::uint64_t max_executions = 100000;
  std::uint64_t max_transitions = 100000;
  bool stop_on_first_violation = true;
  // Prune executions that revisit a (kernel digest, world digest) pair.
  // Off by default: pruning is only as sound as the hash.
  bool state_pruning = false;
};

struct ExplorerStats {
  std::uint64_t executions = 0;          // complete or truncated re-runs
  std::uint64_t transitions = 0;         // delivered wakeups, total
  std::uint64_t choice_points = 0;       // strategy consultations, total
  std::uint64_t branches_explored = 0;   // distinct (node, branch) pairs
  std::uint64_t sleep_set_skips = 0;     // branches pruned by sleep sets
  std::uint64_t state_prunes = 0;        // executions cut at a seen state
  std::uint64_t depth_truncations = 0;
  std::uint64_t transition_truncations = 0;
  std::size_t max_depth_seen = 0;
};

struct Violation {
  std::string invariant;
  std::string message;
  std::vector<Decision> trace;  // full choice vector reaching the failure
  std::uint64_t execution = 0;  // which re-run found it (diagnostic)
};

struct ExploreResult {
  ExplorerStats stats;
  std::vector<Violation> violations;
  // True iff the DFS closed the whole (POR-reduced) tree within budget.
  bool complete = false;

  bool ok() const { return violations.empty(); }
};

class Explorer {
 public:
  explicit Explorer(Scenario& scenario, ExplorerOptions options = {});

  // Runs the DFS until the tree closes, a budget trips, or (by default)
  // the first violation.
  ExploreResult explore();

  // Re-executes exactly one run, answering choice points from `trace` (and
  // index 0 past its end).  Decisions are checked against the live labels;
  // a mismatch is reported as an "mc.divergence" violation.
  ExploreResult replay(const std::vector<Decision>& trace);

 private:
  class Driver;
  void run_one(Driver& driver, ExploreResult& result);

  Scenario& scenario_;
  ExplorerOptions options_;
};

}  // namespace ethergrid::mc
