// The model-checking seam: a decision source consulted wherever the
// simulation would otherwise resolve nondeterminism on its own.
//
// Two call sites exist today:
//
//  * sim::Kernel::pop_runnable_locked -- when two or more distinct processes
//    have wakeups due at the same virtual instant, the kernel normally
//    delivers them in (time, seq) order.  With a Strategy installed it
//    instead surfaces the candidate set (one label per runnable process, in
//    seq order, so index 0 is the default deterministic choice) and delivers
//    whichever one choose() picks.
//  * core::FaultInjector::decide -- probabilistic rules stop drawing from the
//    per-site RNG stream and become enumerable alternatives: index 0 is
//    "no probabilistic fault" (falling through to any deterministic rule
//    that would fire), index k>0 fires the k-th eligible rule.
//
// Both call sites guarantee a deterministic candidate order, which is what
// makes a recorded choice vector replayable: re-executing the simulation and
// answering choose() from the vector reproduces the exact interleaving.
//
// This header is intentionally dependency-free (no sim/ or core/ includes)
// so the kernel and the fault injector can both name the seam without the
// mc library existing at link time.  A null strategy means "behave exactly
// as before"; installing one must not change behavior unless choose()
// deviates from index 0.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ethergrid::mc {

// One nondeterministic branch point surfaced to the strategy.  `labels` is
// the candidate set in the simulation's default deterministic order; the
// strategy returns an index into it.  Labels are stable across replays of
// the same choice prefix (process "name#id" for scheduling, rule
// "kind@pattern#index" for faults), which replay uses as a divergence check.
struct ChoicePoint {
  enum class Kind { kSchedule, kFault };

  Kind kind = Kind::kSchedule;
  // kSchedule: "sched".  kFault: the injection site string being decided.
  std::string_view site;
  const std::vector<std::string>& labels;
};

inline const char* choice_kind_name(ChoicePoint::Kind kind) {
  return kind == ChoicePoint::Kind::kSchedule ? "sched" : "fault";
}

// The decision source.  Implementations must be deterministic functions of
// the decision history (the explorer replays prefixes; a randomized strategy
// would break the divergence check and the counterexample trace).
class Strategy {
 public:
  virtual ~Strategy() = default;

  // Picks one of cp.labels; out-of-range returns are clamped to 0 by the
  // call sites.  Called with the owning component's lock held -- must not
  // re-enter the kernel except through const queries (which full-hold
  // locking makes safe; see Kernel::lock_self).
  virtual std::size_t choose(const ChoicePoint& cp) = 0;

  // Called by the kernel after every delivered wakeup while a strategy is
  // installed (the model checker's "transition").  Returning false stops the
  // drain: the kernel delivers nothing further until the strategy is
  // replaced or removed.  Used for per-transition invariant checks and
  // transition budgets.
  virtual bool on_transition() { return true; }
};

}  // namespace ethergrid::mc
