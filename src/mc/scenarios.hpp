// The built-in model-checking scenarios: the three ROADMAP discipline
// invariants plus the wake-token self-test that proves the checker can
// catch a real historical kernel bug.
//
//  * forall-abort          -- a 3-branch forall script where one branch
//                             fails; sibling-abort must leak no process and
//                             the queue accounting must hold through the
//                             kill storm.
//  * try-timeout-resource  -- two clients contend for a capacity-1 Resource,
//                             fd-table entries, and a Store slot under a
//                             try/timeout; every unwind path must release
//                             everything it holds (the end state has the
//                             full capacity free), across stall-fault
//                             branches.
//  * carrier-sense-crash   -- the paper's Ethernet submitter script against
//                             a Schedd that crashes mid-run (plus a
//                             probabilistic submit error); no interleaving
//                             may deadlock the carrier-sense loop or leak a
//                             process.
//  * reservation-grant-kill - two bulk clients negotiate grants from a
//                             one-at-a-time ReservationBook over a fluid
//                             link; a kill fires at the queued grant's
//                             delivery instant.  No interleaving may leak
//                             a booking, orphan a fluid flow, or
//                             oversubscribe the book.
//  * wake-token-selftest   -- reintroduces the pre-PR-6 kill/invalidate
//                             accounting bug via KernelOptions and expects
//                             the queue-accounting invariant to catch it;
//                             exists so tests (and users) can watch the
//                             checker produce a replayable counterexample.
//
// make_script_scenario wraps an arbitrary ftsh source (ethergrid_mc
// --script) with the default invariants and the SimExecutor builtins.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mc/explorer.hpp"

namespace ethergrid::mc {

std::vector<std::string> scenario_names();

// nullptr for an unknown name.
std::unique_ptr<Scenario> make_scenario(const std::string& name);

// A scenario that runs `source` through the interpreter on the SimExecutor
// builtins (echo/true/false/sleep/fail/...), checking only the default
// invariants (no leaked processes, queue accounting).
std::unique_ptr<Scenario> make_script_scenario(std::string name,
                                               std::string source);

}  // namespace ethergrid::mc
