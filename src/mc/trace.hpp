// Counterexample trace files: a recorded choice vector plus enough header
// to re-create the execution (scenario, queue implementation, seed) and the
// expected outcome (which invariant the trace violates, or none for a
// clean-replay fixture).
//
// The format is line-oriented text so fixtures diff well in review:
//
//   ethergrid-mc-trace v1
//   scenario forall-abort
//   queue wheel
//   seed 1
//   violation queue-accounting        <- omitted for clean traces
//   d sched 2 3 sched branch#4
//   d fault 1 2 schedd.submit crash@schedd.submit#0
//   end
//
// Decision lines are `d <kind> <chosen> <arity> <site> <label>`; the label
// is the remainder of the line (names may contain spaces).  `ethergrid_mc
// --replay` exits 0 iff the replayed outcome matches the recorded
// expectation -- a violation trace must reproduce its violation, a clean
// trace must stay clean -- which is what lets ctest run both kinds of
// fixture through one code path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "sim/event_queue.hpp"
#include "util/status.hpp"

namespace ethergrid::mc {

struct TraceFile {
  std::string scenario;
  sim::QueueImpl queue = sim::QueueImpl::kWheel;
  std::uint64_t seed = 1;
  // Name of the invariant this trace violates; empty for a clean fixture.
  std::string violation;
  std::vector<Decision> decisions;
};

// Serializes to the format above.
std::string format_trace(const TraceFile& trace);

// Parses `text`; returns failure with a line-numbered message on malformed
// input.  Unknown header keys are ignored (forward compatibility).
Status parse_trace(const std::string& text, TraceFile* out);

// File-level wrappers.
Status write_trace_file(const std::string& path, const TraceFile& trace);
Status read_trace_file(const std::string& path, TraceFile* out);

}  // namespace ethergrid::mc
