// Abstract syntax tree for ftsh.
//
// Words carry interpolation segments; every construct that takes a value in
// the grammar (try limits, loop lists, expression operands) stores Words and
// resolves them at execution time, so `try for ${t} minutes` and
// `forany host in ${mirrors}` work naturally.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ethergrid::shell {

// ------------------------------------------------------------------ words

struct WordSegment {
  enum class Kind { kLiteral, kVariable };
  // Behaviour when a variable segment's name is unset.
  enum class IfUnset {
    kError,          // ${name}: fail the statement (typo protection)
    kUseDefault,     // ${name:-default}: substitute without assigning
    kAssignDefault,  // ${name:=default}: assign, then substitute
  };

  Kind kind = Kind::kLiteral;
  std::string text;  // literal text, or the variable name
  // Variable segments from *unquoted* words undergo whitespace splitting in
  // list contexts (`forany h in ${hosts}` fans out); quoted ones do not.
  bool splittable = false;
  IfUnset if_unset = IfUnset::kError;
  std::string default_value;  // literal; used per if_unset
};

struct Word {
  std::vector<WordSegment> segments;
  int line = 0;

  static Word literal(std::string text, int line = 0) {
    Word w;
    WordSegment segment;
    segment.text = std::move(text);
    w.segments.push_back(std::move(segment));
    w.line = line;
    return w;
  }

  // True if the word is a single literal segment equal to text.
  bool is_literal(std::string_view text) const {
    return segments.size() == 1 &&
           segments[0].kind == WordSegment::Kind::kLiteral &&
           segments[0].text == text;
  }

  // Lossy display form for diagnostics ("${x}.out").
  std::string describe() const;
};

// ------------------------------------------------------------ expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kLt,   // .lt.
  kGt,   // .gt.
  kLe,   // .le.
  kGe,   // .ge.
  kEq,   // .eq.
  kNe,   // .ne.
  kAnd,  // .and.
  kOr,   // .or.
  kAdd,  // .add.
  kSub,  // .sub.
  kMul,  // .mul.
  kDiv,  // .div.
  kMod,  // .mod.
};

struct Expr {
  enum class Kind { kValue, kNot, kExists, kBinary };
  Kind kind = Kind::kValue;
  Word value;       // kValue
  ExprPtr child;    // kNot / kExists
  BinaryOp op{};    // kBinary
  ExprPtr lhs;
  ExprPtr rhs;
  int line = 0;
};

// ------------------------------------------------------------- statements

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

struct Group {
  std::vector<StatementPtr> statements;
};

struct Redirections {
  std::optional<Word> stdin_file;    // <  file
  std::optional<Word> stdout_file;   // >  file / >> file
  bool stdout_append = false;
  bool merge_stderr = false;         // >& / ->&
  std::optional<Word> stdin_var;     // -< var
  std::optional<Word> stdout_var;    // -> var / ->& var
};

struct CommandStmt {
  std::vector<Word> argv;  // argv[0] may name a defined function
  Redirections redirects;
};

struct TryStmt {
  // "for <words...>" -- joined and parsed as a duration at run time.
  std::vector<Word> time_words;
  // "<word> times" -- parsed as an integer at run time.
  std::optional<Word> attempts_word;
  Group body;
  std::optional<Group> catch_body;
};

struct ForStmt {
  enum class Kind { kAny, kAll };
  Kind kind = Kind::kAny;
  std::string variable;
  std::vector<Word> list;
  Group body;
};

struct IfStmt {
  ExprPtr condition;
  Group then_body;
  std::optional<Group> else_body;
};

struct WhileStmt {
  ExprPtr condition;
  Group body;
};

struct FunctionDef {
  std::string name;
  std::vector<std::string> parameters;
  std::shared_ptr<Group> body;  // shared with the runtime function table
};

struct AssignmentStmt {
  std::string name;
  // Either a plain word value or an arithmetic/boolean expression
  // (`x=5`, `x=${y}`, `n = ${n} .add. 1`).
  ExprPtr value;
};

struct Statement {
  enum class Kind {
    kCommand,
    kTry,
    kFor,
    kIf,
    kWhile,
    kFunction,
    kAssignment,
    kFailure,  // the `failure` throw
    kReturn,   // early success return from a function / script
  };
  Kind kind;
  int line = 0;
  CommandStmt command;     // kCommand
  TryStmt try_stmt;        // kTry
  ForStmt for_stmt;        // kFor
  IfStmt if_stmt;          // kIf
  WhileStmt while_stmt;    // kWhile
  FunctionDef function;    // kFunction
  AssignmentStmt assignment;  // kAssignment
};

struct Script {
  Group top;
};

}  // namespace ethergrid::shell
