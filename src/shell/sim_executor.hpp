// SimExecutor: runs ftsh scripts inside the simulation.
//
// External commands are registered handlers executing in virtual time via
// the calling process's sim::Context.  The binding is ambient: the kernel
// knows which simulated process is executing at any instant (exactly one
// is), so the executor asks it for the current Context.  A thread_local
// cannot express this on the fiber backend, where every process shares the
// scheduler's OS thread.  `forall` branches become child simulated
// processes, giving real parallelism in virtual time with kill-on-failure.
//
// A small in-memory file namespace backs file redirections and `.exists.`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "shell/executor.hpp"
#include "sim/kernel.hpp"
#include "sim/resource.hpp"

namespace ethergrid::shell {

class SimExecutor final : public Executor {
 public:
  // Handler contract: runs in the calling process's virtual time; returns
  // the command's result.  May block via ctx (sleep/wait); enclosing try
  // deadlines preempt it automatically through the kernel deadline stack.
  using Handler =
      std::function<CommandResult(sim::Context&, const CommandInvocation&)>;

  explicit SimExecutor(sim::Kernel& kernel);

  // Registers/overrides a command.  Built-ins provided out of the box:
  // echo, true, false, sleep, fail, flaky, cat, exists, append-file.
  void register_command(const std::string& name, Handler handler);

  // Installs the forall branch-creation governor (see ParallelPolicy).
  // Call before running scripts; replaces any previous policy.
  void set_parallel_policy(const ParallelPolicy& policy);

  // In-memory file namespace (file redirections, `.exists.`, `cat`).
  void write_file(const std::string& path, std::string contents);
  std::optional<std::string> read_file(const std::string& path) const;
  void remove_file(const std::string& path);

  // Declares ctx the executor's current context for this process body.
  // Resolution actually flows through the kernel (see file comment); the
  // binding survives as a scope marker that asserts, at construction, that
  // ctx really is the process the kernel says is running.
  class ContextBinding {
   public:
    ContextBinding(SimExecutor& executor, sim::Context& ctx);
    ~ContextBinding();
    ContextBinding(const ContextBinding&) = delete;
    ContextBinding& operator=(const ContextBinding&) = delete;
  };

  // --- Executor interface ---
  CommandResult run(const CommandInvocation& invocation) override;
  std::vector<Status> run_parallel(
      std::vector<std::function<Status()>> branches) override;
  bool file_exists(const std::string& path) override;
  TimePoint now() override;
  void sleep(Duration d) override;
  Status with_deadline(TimePoint deadline,
                       const std::function<Status()>& fn) override;

  sim::Kernel& kernel() { return *kernel_; }

 private:
  sim::Context& current() const;
  void register_builtins();

  sim::Kernel* kernel_;
  mutable std::mutex mu_;  // protects commands_ and files_
  std::map<std::string, Handler> commands_;
  std::map<std::string, std::string> files_;
  ParallelPolicy parallel_policy_;
  std::unique_ptr<sim::Resource> process_table_;  // when slots are limited
};

}  // namespace ethergrid::shell
