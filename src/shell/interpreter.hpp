// The ftsh interpreter.
//
// Evaluation model (paper section 4):
//  * a procedure, atomic or compound, does not return a value -- it succeeds
//    or fails;
//  * a group fails at its first failing member;
//  * `try` retries its group under exponential backoff within a time and/or
//    attempt budget, forcibly terminating work in flight when the budget
//    expires; `catch` handles the failure;
//  * `forany` runs alternatives in order to first success; `forall` runs
//    them in parallel and fails (aborting stragglers) if any fails;
//  * failures are untyped: the interpreter never branches on *why*
//    something failed, but logs the details to the back channel.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "shell/ast.hpp"
#include "shell/environment.hpp"
#include "shell/executor.hpp"
#include "shell/observer.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace ethergrid::shell {

struct InterpreterOptions {
  // Backoff between try attempts; the paper default (1 s, x2, 1 h cap,
  // jitter [1,2)).
  core::BackoffPolicy backoff = core::BackoffPolicy::paper_default();
  // RNG seed for backoff jitter (forked per forall branch).
  std::uint64_t seed = 1;
  // THE back channel: every span (script / try / attempt / forany / forall
  // / command / function), point event (backoff decisions), output chunk,
  // and log line the interpreter produces goes to this one sink.  Replaces
  // the old scattered fields (logger, stdout_sink, stderr_sink, trace,
  // audit) -- compose obs::LoggerObserver, obs::StreamObserver,
  // obs::XTraceObserver, obs::TraceRecorder, obs::MetricsRegistry, or an
  // AuditLog into the set instead (shell::Session does this wiring).
  // nullptr = observability off; the hot path is a single null check.
  // Not owned; must outlive the interpreter's runs.
  ObserverSet* observers = nullptr;
  // When false, uncaptured command stdout (resp. stderr) is NOT accumulated
  // into output() (resp. diagnostics()); it still reaches the observers.
  // Session clears the flag for any stream a StreamObserver handles, so
  // each output chunk flows through exactly one consumer path.
  bool capture_stdout = true;
  bool capture_stderr = true;
};

class Interpreter {
 public:
  Interpreter(Executor& executor, InterpreterOptions options = {});

  // Evaluates a script in the given root environment.  The returned status
  // is the script's overall success/failure.
  Status run(const Script& script, Environment& env);

  // Parse + run convenience.
  Status run_source(std::string_view source, Environment& env);

  // Accumulated uncaptured stdout (when no custom sink was installed).
  std::string output() const;
  // Accumulated stderr (when no custom sink was installed).
  std::string diagnostics() const;

 private:
  struct EvalCtx;   // per-branch evaluation state (env, deadline, rng)
  struct Scratch;   // per-branch reusable command-path buffers

  enum class Flow { kNormal, kReturn };
  struct EvalResult {
    Status status;
    Flow flow = Flow::kNormal;
    static EvalResult ok() { return {Status::success(), Flow::kNormal}; }
    static EvalResult from(Status s) { return {std::move(s), Flow::kNormal}; }
  };

  EvalResult eval_group(const Group& group, EvalCtx& ctx);
  EvalResult eval_statement(const Statement& stmt, EvalCtx& ctx);
  EvalResult eval_command(const Statement& stmt, EvalCtx& ctx);
  EvalResult eval_function_call(const Statement& stmt,
                                const FunctionDef& function,
                                const std::vector<std::string>& argv,
                                EvalCtx& ctx);
  EvalResult eval_try(const Statement& stmt, EvalCtx& ctx);
  EvalResult eval_for(const Statement& stmt, EvalCtx& ctx);
  EvalResult eval_if(const Statement& stmt, EvalCtx& ctx);
  EvalResult eval_while(const Statement& stmt, EvalCtx& ctx);
  EvalResult eval_assignment(const Statement& stmt, EvalCtx& ctx);

  // Word expansion.  Throws EvalError (internal) on undefined variables.
  std::string expand_word(const Word& word, EvalCtx& ctx);
  void expand_word_into(const Word& word, EvalCtx& ctx, std::string& out);
  // Expands a word list with whitespace splitting of unquoted variables.
  // The _into form clears and refills `out`, reusing its capacity -- the
  // command hot path expands straight into the scratch invocation's argv.
  std::vector<std::string> expand_words(const std::vector<Word>& words,
                                        EvalCtx& ctx);
  void expand_words_into(const std::vector<Word>& words, EvalCtx& ctx,
                         std::vector<std::string>& out);

  // Expression evaluation; results are strings ("true"/"false" for boolean
  // operators).  Throws EvalError on type errors.
  std::string eval_expr(const Expr& expr, EvalCtx& ctx);
  bool eval_condition(const Expr& expr, EvalCtx& ctx);

  void emit_stdout(std::string_view text);
  void emit_stderr(std::string_view text);
  void log(LogLevel level, const std::string& message);

  Executor* executor_;
  InterpreterOptions options_;
  ObserverSet* observers_;  // = options_.observers; nullptr = off
  // Render-lane allocator for forall branches: each branch gets a fresh
  // lane so concurrent spans draw as parallel rows.  Allocation follows
  // branch creation order, which the sim kernel makes deterministic.
  std::atomic<std::uint64_t> next_track_{0};
  mutable std::mutex output_mu_;
  std::string output_;
  std::string diagnostics_;
};

}  // namespace ethergrid::shell
