#include "shell/interpreter.hpp"

#include <algorithm>
#include <cstdio>

#include "core/retry.hpp"
#include "shell/parser.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace ethergrid::shell {

namespace {

// Internal: unwinds evaluation of one statement; converted to a failed
// status (never escapes the interpreter).
struct EvalError {
  Status status;
};

[[noreturn]] void eval_fail(Status status) { throw EvalError{std::move(status)}; }

}  // namespace

// Per-branch reusable buffers for the command hot path.  One Scratch lives
// on each branch's stack (the run() frame, each forall branch body); nested
// evaluation on the same branch shares it.  That sharing is safe because an
// invocation is fully consumed -- executor run, span end, output routing --
// before the next command on the same branch expands into the buffers, and
// the one consumer that holds the expanded argv across nested evaluation
// (the function-call path) reads it only up to parameter binding, before
// the body starts clobbering the scratch.
struct Interpreter::Scratch {
  CommandInvocation inv;
  std::string detail;  // joined argv backing the command span's detail view
};

// Per-branch evaluation state.  forall branches get their own copy with a
// child environment and a forked RNG stream; everything else threads one
// instance through by reference.
struct Interpreter::EvalCtx {
  Environment* env;
  TimePoint deadline = TimePoint::max();  // earliest enclosing try deadline
  Rng rng;
  int function_depth = 0;
  std::uint64_t span = 0;   // enclosing span id (0 = none / observability off)
  std::uint64_t track = 0;  // trace render lane (forall branches diverge)
  Scratch* scratch = nullptr;
};

Interpreter::Interpreter(Executor& executor, InterpreterOptions options)
    : executor_(&executor),
      options_(std::move(options)),
      observers_(options_.observers) {}

Status Interpreter::run(const Script& script, Environment& env) {
  Scratch scratch;
  EvalCtx ctx{&env, TimePoint::max(), Rng(options_.seed), 0};
  ctx.scratch = &scratch;
  obs::Span span;
  if (observers_) {
    span.kind = obs::SpanKind::kScript;
    span.start = executor_->now();
    observers_->begin_span(span);
    ctx.span = span.id;
  }
  EvalResult result = eval_group(script.top, ctx);
  if (observers_) {
    span.end = executor_->now();
    span.status = result.status;
    observers_->end_span(span);
  }
  return result.status;
}

Status Interpreter::run_source(std::string_view source, Environment& env) {
  ParseResult parsed = parse_script(source);
  if (parsed.status.failed()) return parsed.status;
  return run(*parsed.script, env);
}

std::string Interpreter::output() const {
  std::lock_guard<std::mutex> lock(output_mu_);
  return output_;
}

std::string Interpreter::diagnostics() const {
  std::lock_guard<std::mutex> lock(output_mu_);
  return diagnostics_;
}

// Output routing discipline: a chunk reaches the observers (when any are
// installed) and is accumulated only while the matching capture flag is on.
// Session clears the flag for streams a StreamObserver consumes, so no
// chunk is ever delivered down two paths (the duplication the old
// stderr_sink arrangement invited).
void Interpreter::emit_stdout(std::string_view text) {
  if (observers_) observers_->on_output(obs::StreamKind::kStdout, text);
  if (!options_.capture_stdout) return;
  std::lock_guard<std::mutex> lock(output_mu_);
  output_ += text;
}

void Interpreter::emit_stderr(std::string_view text) {
  if (observers_) observers_->on_output(obs::StreamKind::kStderr, text);
  if (!options_.capture_stderr) return;
  std::lock_guard<std::mutex> lock(output_mu_);
  diagnostics_ += text;
}

// Call sites guard with `if (observers_)` so the strprintf argument never
// renders when observability is off.
void Interpreter::log(LogLevel level, const std::string& message) {
  if (!observers_) return;
  obs::ObsLogLine line;
  line.level = static_cast<int>(level);
  line.time = executor_->now();
  line.component = "ftsh";
  line.message = message;
  observers_->on_log(line);
}

// ----------------------------------------------------------------- groups

Interpreter::EvalResult Interpreter::eval_group(const Group& group,
                                                EvalCtx& ctx) {
  for (const StatementPtr& stmt : group.statements) {
    // A sibling forall branch failed: stop this branch between statements
    // instead of letting command-free stretches (arithmetic loops) run on.
    if (executor_->abort_requested()) {
      return EvalResult::from(Status::killed("forall branch aborted"));
    }
    EvalResult result = eval_statement(*stmt, ctx);
    if (result.flow == Flow::kReturn || result.status.failed()) {
      return result;  // fail-fast: the rest of the group does not run
    }
  }
  return EvalResult::ok();
}

Interpreter::EvalResult Interpreter::eval_statement(const Statement& stmt,
                                                    EvalCtx& ctx) {
  try {
    switch (stmt.kind) {
      case Statement::Kind::kCommand:
        return eval_command(stmt, ctx);
      case Statement::Kind::kTry:
        return eval_try(stmt, ctx);
      case Statement::Kind::kFor:
        return eval_for(stmt, ctx);
      case Statement::Kind::kIf:
        return eval_if(stmt, ctx);
      case Statement::Kind::kWhile:
        return eval_while(stmt, ctx);
      case Statement::Kind::kFunction:
        ctx.env->define_function(stmt.function);
        return EvalResult::ok();
      case Statement::Kind::kAssignment:
        return eval_assignment(stmt, ctx);
      case Statement::Kind::kFailure:
        return EvalResult::from(Status::failure(
            strprintf("failure at line %d", stmt.line)));
      case Statement::Kind::kReturn:
        return EvalResult{Status::success(), Flow::kReturn};
    }
    return EvalResult::from(Status::failure("unknown statement kind"));
  } catch (const EvalError& e) {
    if (observers_) {
      log(LogLevel::kInfo, strprintf("line %d: %s", stmt.line,
                                     e.status.to_string().c_str()));
    }
    return EvalResult::from(e.status);
  }
}

// --------------------------------------------------------------- commands

Interpreter::EvalResult Interpreter::eval_command(const Statement& stmt,
                                                  EvalCtx& ctx) {
  const CommandStmt& cmd = stmt.command;
  CommandInvocation& invocation = ctx.scratch->inv;
  expand_words_into(cmd.argv, ctx, invocation.argv);
  if (invocation.argv.empty()) {
    return EvalResult::from(
        Status::invalid_argument("command expanded to nothing"));
  }

  // Function call?
  if (auto function = ctx.env->find_function(invocation.argv[0])) {
    if (cmd.redirects.stdin_file || cmd.redirects.stdout_file ||
        cmd.redirects.stdin_var || cmd.redirects.stdout_var) {
      return EvalResult::from(Status::invalid_argument(
          "redirections are not supported on function calls"));
    }
    return eval_function_call(stmt, *function, invocation.argv, ctx);
  }

  // Reset the reused invocation's non-argv state.
  invocation.stdin_data.reset();
  invocation.stdin_file.reset();
  invocation.stdout_file.reset();
  invocation.stdout_append = cmd.redirects.stdout_append;
  invocation.capture_stdout = false;
  invocation.merge_stderr = cmd.redirects.merge_stderr;
  invocation.deadline = ctx.deadline;
  invocation.parent_span = 0;
  if (cmd.redirects.stdin_file) {
    invocation.stdin_file = expand_word(*cmd.redirects.stdin_file, ctx);
  }
  if (cmd.redirects.stdout_file) {
    invocation.stdout_file = expand_word(*cmd.redirects.stdout_file, ctx);
  }
  std::string capture_var;
  if (cmd.redirects.stdout_var) {
    capture_var = expand_word(*cmd.redirects.stdout_var, ctx);
    invocation.capture_stdout = true;
  }
  if (cmd.redirects.stdin_var) {
    const std::string name = expand_word(*cmd.redirects.stdin_var, ctx);
    auto value = ctx.env->get(name);
    if (!value) {
      return EvalResult::from(
          Status::invalid_argument("undefined variable for -<: " + name));
    }
    invocation.stdin_data = std::move(*value);
  }

  obs::Span span;
  if (observers_) {
    std::string& detail = ctx.scratch->detail;
    detail.clear();
    for (std::size_t i = 0; i < invocation.argv.size(); ++i) {
      if (i != 0) detail += ' ';
      detail += invocation.argv[i];
    }
    span.kind = obs::SpanKind::kCommand;
    span.parent = ctx.span;
    span.name = invocation.argv[0];
    span.detail = detail;
    span.line = stmt.line;
    span.track = ctx.track;
    span.start = executor_->now();
    observers_->begin_span(span);
    invocation.parent_span = span.id;
  }
  CommandResult result = executor_->run(invocation);
  if (observers_) {
    span.end = executor_->now();
    span.status = result.status;
    observers_->end_span(span);
    if (result.status.failed()) {
      log(LogLevel::kInfo,
          strprintf("command '%s' failed: %s", invocation.argv[0].c_str(),
                    result.status.to_string().c_str()));
    }
  }
  if (invocation.capture_stdout) {
    if (result.status.ok()) {
      // Command-substitution convention: strip trailing newlines so that
      // `cut ... -> n` yields a clean value for ${n} comparisons.
      while (!result.out.empty() && result.out.back() == '\n') {
        result.out.pop_back();
      }
      ctx.env->assign(capture_var, std::move(result.out));
    }
  } else if (!result.out.empty()) {
    emit_stdout(result.out);
  }
  if (!result.err.empty()) emit_stderr(result.err);
  return EvalResult::from(std::move(result.status));
}

Interpreter::EvalResult Interpreter::eval_function_call(
    const Statement& stmt, const FunctionDef& function,
    const std::vector<std::string>& argv, EvalCtx& ctx) {
  if (ctx.function_depth > 64) {
    return EvalResult::from(
        Status::failure("function recursion too deep: " + function.name));
  }
  if (argv.size() - 1 != function.parameters.size()) {
    return EvalResult::from(Status::invalid_argument(strprintf(
        "line %d: function %s expects %zu argument(s), got %zu", stmt.line,
        function.name.c_str(), function.parameters.size(), argv.size() - 1)));
  }
  Environment frame(ctx.env);
  // `argv` aliases the shared scratch; it must not be read past this
  // binding loop -- the body below reuses the same buffers.
  for (std::size_t i = 0; i < function.parameters.size(); ++i) {
    frame.define(function.parameters[i], argv[i + 1]);
  }
  EvalCtx call_ctx{&frame,       ctx.deadline,           ctx.rng.stream(function.name),
                   ctx.function_depth + 1, ctx.span, ctx.track,
                   ctx.scratch};
  obs::Span span;
  if (observers_) {
    span.kind = obs::SpanKind::kFunction;
    span.parent = ctx.span;
    span.name = function.name;
    span.line = stmt.line;
    span.track = ctx.track;
    span.start = executor_->now();
    observers_->begin_span(span);
    call_ctx.span = span.id;
  }
  EvalResult result = eval_group(*function.body, call_ctx);
  if (observers_) {
    span.end = executor_->now();
    span.status = result.status;
    observers_->end_span(span);
  }
  if (result.flow == Flow::kReturn) {
    return EvalResult::ok();  // `return` stops at the function boundary
  }
  return result;
}

// -------------------------------------------------------------------- try

namespace {
std::string describe_try(const TryStmt& t) {
  std::string out = "try";
  if (!t.time_words.empty()) {
    out += " for";
    for (const Word& w : t.time_words) out += " " + w.describe();
  }
  if (t.attempts_word) {
    out += (t.time_words.empty() ? " " : " or ") +
           t.attempts_word->describe() + " times";
  }
  return out;
}
}  // namespace

Interpreter::EvalResult Interpreter::eval_try(const Statement& stmt,
                                              EvalCtx& ctx) {
  const TryStmt& t = stmt.try_stmt;

  core::TryOptions options;
  options.backoff = options_.backoff;
  if (!t.time_words.empty()) {
    const std::string text = join(expand_words(t.time_words, ctx), " ");
    Duration limit{};
    if (!parse_duration(text, &limit)) {
      return EvalResult::from(Status::invalid_argument(
          strprintf("line %d: bad try duration '%s'", stmt.line,
                    text.c_str())));
    }
    options.time_limit = limit;
  }
  if (t.attempts_word) {
    const std::string text = expand_word(*t.attempts_word, ctx);
    long long n = 0;
    if (!parse_int(text, &n) || n < 0) {
      return EvalResult::from(Status::invalid_argument(strprintf(
          "line %d: bad try attempt count '%s'", stmt.line, text.c_str())));
    }
    options.attempt_limit = int(n);
  }

  const TimePoint try_deadline =
      options.time_limit ? executor_->now() + *options.time_limit
                         : TimePoint::max();
  EvalCtx body_ctx{ctx.env,   std::min(ctx.deadline, try_deadline),
                   ctx.rng,   ctx.function_depth,
                   ctx.span,  ctx.track,
                   ctx.scratch};
  bool returned = false;

  // Backs the try span's name view from begin through end.
  std::string try_name;
  obs::Span try_span;
  if (observers_) {
    try_name = describe_try(t);
    try_span.kind = obs::SpanKind::kTry;
    try_span.parent = ctx.span;
    try_span.name = try_name;
    try_span.line = stmt.line;
    try_span.track = ctx.track;
    try_span.start = executor_->now();
    observers_->begin_span(try_span);
    options.on_backoff = [&](Duration delay) {
      char site[32];
      std::snprintf(site, sizeof(site), "try:%d", stmt.line);
      obs::ObsEvent event;
      event.kind = obs::ObsEvent::Kind::kBackoff;
      event.time = executor_->now();
      event.span = try_span.id;
      event.site = obs::intern_site(site);
      event.value = to_seconds(delay);
      observers_->on_event(event);
    };
  }

  core::TryMetrics metrics;
  options.metrics = &metrics;
  int attempt_index = 0;
  Status status =
      core::run_try(*executor_, body_ctx.rng, options, [&](TimePoint) {
        // The name buffer outlives the span's end_span below.
        char attempt_name[32];
        obs::Span attempt_span;
        if (observers_) {
          std::snprintf(attempt_name, sizeof(attempt_name), "attempt %d",
                        ++attempt_index);
          attempt_span.kind = obs::SpanKind::kTryAttempt;
          attempt_span.parent = try_span.id;
          attempt_span.name = attempt_name;
          attempt_span.line = stmt.line;
          attempt_span.track = ctx.track;
          attempt_span.start = executor_->now();
          observers_->begin_span(attempt_span);
          body_ctx.span = attempt_span.id;
        }
        EvalResult r = eval_group(t.body, body_ctx);
        if (r.flow == Flow::kReturn) returned = true;
        if (observers_) {
          attempt_span.end = executor_->now();
          attempt_span.status = r.status;
          observers_->end_span(attempt_span);
        }
        return r.status;
      });
  ctx.rng = body_ctx.rng;  // keep the jitter stream advancing

  if (observers_) {
    try_span.end = executor_->now();
    try_span.status = status;
    try_span.attempts = metrics.attempts;
    try_span.backoff = metrics.backoff_total;
    observers_->end_span(try_span);
    log(LogLevel::kDebug,
        strprintf("try at line %d: %s after %d attempt(s), %s backing off",
                  stmt.line, status.ok() ? "success" : "failure",
                  metrics.attempts,
                  format_duration(metrics.backoff_total).c_str()));
  }

  if (returned && status.ok()) {
    return EvalResult{Status::success(), Flow::kReturn};
  }
  if (status.failed() && t.catch_body) {
    if (observers_) {
      log(LogLevel::kDebug, strprintf("try at line %d: entering catch block",
                                      stmt.line));
    }
    return eval_group(*t.catch_body, ctx);
  }
  return EvalResult::from(std::move(status));
}

// ---------------------------------------------------------- forany/forall

Interpreter::EvalResult Interpreter::eval_for(const Statement& stmt,
                                              EvalCtx& ctx) {
  const ForStmt& f = stmt.for_stmt;
  const std::vector<std::string> items = expand_words(f.list, ctx);
  if (items.empty()) {
    return EvalResult::from(Status::invalid_argument(
        strprintf("line %d: %s list expanded to nothing", stmt.line,
                  f.kind == ForStmt::Kind::kAny ? "forany" : "forall")));
  }

  if (f.kind == ForStmt::Kind::kAny) {
    obs::Span span;
    std::string forany_name;  // backs the span's name view begin -> end
    const std::uint64_t saved_span = ctx.span;
    if (observers_) {
      forany_name = "forany " + f.variable;
      span.kind = obs::SpanKind::kForany;
      span.parent = ctx.span;
      span.name = forany_name;
      span.line = stmt.line;
      span.track = ctx.track;
      span.start = executor_->now();
      observers_->begin_span(span);
      ctx.span = span.id;
    }
    auto finish = [&](const Status& s, int attempts) {
      if (!observers_) return;
      span.end = executor_->now();
      span.status = s;
      span.attempts = attempts;
      observers_->end_span(span);
      ctx.span = saved_span;
    };
    Status last = Status::failure("forany: no alternatives");
    int tried = 0;
    for (const std::string& item : items) {
      ctx.env->assign(f.variable, item);
      ++tried;
      EvalResult result = eval_group(f.body, ctx);
      if (result.flow == Flow::kReturn || result.status.ok()) {
        finish(result.status, tried);
        return result;  // winning value stays in the variable
      }
      last = std::move(result.status);
      if (observers_) {
        log(LogLevel::kDebug,
            strprintf("forany at line %d: alternative '%s' failed", stmt.line,
                      item.c_str()));
      }
    }
    finish(last, tried);
    return EvalResult::from(std::move(last));
  }

  // forall: all alternatives in parallel; abort the rest on first failure
  // (the executor implements the abort).
  obs::Span span;
  std::string forall_name;   // back the span's views begin -> end
  char forall_detail[32];
  if (observers_) {
    forall_name = "forall " + f.variable;
    std::snprintf(forall_detail, sizeof(forall_detail), "%d branches",
                  int(items.size()));
    span.kind = obs::SpanKind::kForall;
    span.parent = ctx.span;
    span.name = forall_name;
    span.detail = forall_detail;
    span.line = stmt.line;
    span.track = ctx.track;
    span.start = executor_->now();
    observers_->begin_span(span);
  }
  std::vector<std::unique_ptr<Environment>> branch_envs;
  std::vector<std::function<Status()>> branches;
  branch_envs.reserve(items.size());
  branches.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto env = std::make_unique<Environment>(ctx.env);
    env->define(f.variable, items[i]);
    Environment* env_ptr = env.get();
    branch_envs.push_back(std::move(env));
    Rng branch_rng = ctx.rng.stream(i);
    // Each branch renders on its own lane; allocation follows branch
    // creation order, which the sim kernel makes deterministic.
    const std::uint64_t branch_track =
        observers_ ? ++next_track_ : ctx.track;
    branches.push_back([this, &f, env_ptr, branch_rng, &ctx, &span,
                        branch_track]() -> Status {
      Scratch branch_scratch;  // branches run concurrently: own buffers
      EvalCtx branch_ctx{env_ptr, ctx.deadline, branch_rng,
                         ctx.function_depth,
                         observers_ ? span.id : ctx.span, branch_track,
                         &branch_scratch};
      return eval_group(f.body, branch_ctx).status;
    });
  }
  std::vector<Status> statuses = executor_->run_parallel(std::move(branches));
  Status overall = Status::success();
  for (const Status& s : statuses) {
    if (s.failed()) {
      overall = Status(s.code(),
                       strprintf("forall at line %d failed: %s", stmt.line,
                                 s.message().c_str()));
      break;
    }
  }
  if (observers_) {
    span.end = executor_->now();
    span.status = overall;
    span.attempts = int(statuses.size());
    observers_->end_span(span);
  }
  return EvalResult::from(std::move(overall));
}

// ------------------------------------------------------------ if / while

Interpreter::EvalResult Interpreter::eval_if(const Statement& stmt,
                                             EvalCtx& ctx) {
  if (eval_condition(*stmt.if_stmt.condition, ctx)) {
    return eval_group(stmt.if_stmt.then_body, ctx);
  }
  if (stmt.if_stmt.else_body) {
    return eval_group(*stmt.if_stmt.else_body, ctx);
  }
  return EvalResult::ok();
}

Interpreter::EvalResult Interpreter::eval_while(const Statement& stmt,
                                                EvalCtx& ctx) {
  while (eval_condition(*stmt.while_stmt.condition, ctx)) {
    EvalResult result = eval_group(stmt.while_stmt.body, ctx);
    if (result.flow == Flow::kReturn || result.status.failed()) {
      return result;
    }
  }
  return EvalResult::ok();
}

Interpreter::EvalResult Interpreter::eval_assignment(const Statement& stmt,
                                                     EvalCtx& ctx) {
  std::string value = eval_expr(*stmt.assignment.value, ctx);
  ctx.env->assign(stmt.assignment.name, std::move(value));
  return EvalResult::ok();
}

// -------------------------------------------------------------- expansion

namespace {

// Resolves one variable segment, honoring ${name:-default} / ${name:=d}.
// Throws EvalError for a plain unset ${name}.
std::string resolve_variable(const WordSegment& seg, Environment& env,
                             int line) {
  auto value = env.get(seg.text);
  if (value) return *value;
  switch (seg.if_unset) {
    case WordSegment::IfUnset::kUseDefault:
      return seg.default_value;
    case WordSegment::IfUnset::kAssignDefault:
      env.assign(seg.text, seg.default_value);
      return seg.default_value;
    case WordSegment::IfUnset::kError:
      break;
  }
  eval_fail(Status::invalid_argument(strprintf(
      "line %d: undefined variable '%s'", line, seg.text.c_str())));
}

}  // namespace

void Interpreter::expand_word_into(const Word& word, EvalCtx& ctx,
                                   std::string& out) {
  for (const WordSegment& seg : word.segments) {
    if (seg.kind == WordSegment::Kind::kLiteral) {
      out += seg.text;
      continue;
    }
    out += resolve_variable(seg, *ctx.env, word.line);
  }
}

std::string Interpreter::expand_word(const Word& word, EvalCtx& ctx) {
  std::string out;
  expand_word_into(word, ctx, out);
  return out;
}

std::vector<std::string> Interpreter::expand_words(
    const std::vector<Word>& words, EvalCtx& ctx) {
  std::vector<std::string> out;
  expand_words_into(words, ctx, out);
  return out;
}

void Interpreter::expand_words_into(const std::vector<Word>& words,
                                    EvalCtx& ctx,
                                    std::vector<std::string>& out) {
  out.clear();  // keeps the vector's capacity: the hot path re-expands free
  for (const Word& word : words) {
    // Fast path: no splittable variable segments -> single argument.
    bool any_split = false;
    for (const WordSegment& seg : word.segments) {
      if (seg.kind == WordSegment::Kind::kVariable && seg.splittable) {
        any_split = true;
        break;
      }
    }
    if (!any_split) {
      out.emplace_back();
      expand_word_into(word, ctx, out.back());
      continue;
    }
    // Expand then field-split the splittable variable values.  We expand
    // segment-wise so literal text adjacent to a split variable joins the
    // neighbouring fields (Bourne semantics).
    std::vector<std::string> fields{""};
    bool field_open = false;  // false: current field may still be dropped
    for (const WordSegment& seg : word.segments) {
      std::string value;
      if (seg.kind == WordSegment::Kind::kLiteral) {
        value = seg.text;
      } else {
        value = resolve_variable(seg, *ctx.env, word.line);
      }
      if (seg.kind == WordSegment::Kind::kVariable && seg.splittable) {
        std::vector<std::string> parts = split(value);
        const bool leading_space =
            !value.empty() &&
            std::isspace(static_cast<unsigned char>(value.front()));
        const bool trailing_space =
            !value.empty() &&
            std::isspace(static_cast<unsigned char>(value.back()));
        for (std::size_t i = 0; i < parts.size(); ++i) {
          if (i == 0 && !leading_space) {
            fields.back() += parts[i];
          } else {
            fields.push_back(parts[i]);
          }
          field_open = true;
        }
        if (trailing_space && !parts.empty()) {
          fields.push_back("");
          field_open = false;
        }
      } else {
        fields.back() += value;
        if (!value.empty()) field_open = true;
      }
    }
    if (!field_open && fields.size() > 1 && fields.back().empty()) {
      fields.pop_back();  // trailing split residue
    }
    for (std::string& field : fields) {
      if (!field.empty() || word.segments.empty()) {
        out.push_back(std::move(field));
      }
    }
  }
}

// ------------------------------------------------------------ expressions

namespace {

bool is_boolean(const std::string& s) { return s == "true" || s == "false"; }

}  // namespace

std::string Interpreter::eval_expr(const Expr& expr, EvalCtx& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kValue:
      return expand_word(expr.value, ctx);
    case Expr::Kind::kNot: {
      std::string v = eval_expr(*expr.child, ctx);
      if (!is_boolean(v)) {
        eval_fail(Status::invalid_argument(strprintf(
            "line %d: .not. needs a boolean, got '%s'", expr.line,
            v.c_str())));
      }
      return v == "true" ? "false" : "true";
    }
    case Expr::Kind::kExists: {
      std::string path = eval_expr(*expr.child, ctx);
      return executor_->file_exists(path) ? "true" : "false";
    }
    case Expr::Kind::kBinary:
      break;
  }

  const std::string lhs = eval_expr(*expr.lhs, ctx);
  const std::string rhs = eval_expr(*expr.rhs, ctx);

  auto need_ints = [&](long long* a, long long* b) {
    if (!parse_int(lhs, a) || !parse_int(rhs, b)) {
      eval_fail(Status::invalid_argument(strprintf(
          "line %d: numeric operator needs integers, got '%s' and '%s'",
          expr.line, lhs.c_str(), rhs.c_str())));
    }
  };
  auto boolean = [](bool b) { return std::string(b ? "true" : "false"); };

  switch (expr.op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      long long a, b;
      bool equal;
      if (parse_int(lhs, &a) && parse_int(rhs, &b)) {
        equal = a == b;  // 07 .eq. 7
      } else {
        equal = lhs == rhs;
      }
      return boolean(expr.op == BinaryOp::kEq ? equal : !equal);
    }
    case BinaryOp::kLt:
    case BinaryOp::kGt:
    case BinaryOp::kLe:
    case BinaryOp::kGe: {
      long long a, b;
      need_ints(&a, &b);
      switch (expr.op) {
        case BinaryOp::kLt:
          return boolean(a < b);
        case BinaryOp::kGt:
          return boolean(a > b);
        case BinaryOp::kLe:
          return boolean(a <= b);
        default:
          return boolean(a >= b);
      }
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      if (!is_boolean(lhs) || !is_boolean(rhs)) {
        eval_fail(Status::invalid_argument(strprintf(
            "line %d: boolean operator needs booleans, got '%s' and '%s'",
            expr.line, lhs.c_str(), rhs.c_str())));
      }
      const bool a = lhs == "true";
      const bool b = rhs == "true";
      return boolean(expr.op == BinaryOp::kAnd ? (a && b) : (a || b));
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      long long a, b;
      need_ints(&a, &b);
      if ((expr.op == BinaryOp::kDiv || expr.op == BinaryOp::kMod) && b == 0) {
        eval_fail(Status::invalid_argument(
            strprintf("line %d: division by zero", expr.line)));
      }
      switch (expr.op) {
        case BinaryOp::kAdd:
          return std::to_string(a + b);
        case BinaryOp::kSub:
          return std::to_string(a - b);
        case BinaryOp::kMul:
          return std::to_string(a * b);
        case BinaryOp::kDiv:
          return std::to_string(a / b);
        default:
          return std::to_string(a % b);
      }
    }
  }
  eval_fail(Status::failure("unhandled operator"));
}

bool Interpreter::eval_condition(const Expr& expr, EvalCtx& ctx) {
  const std::string v = eval_expr(expr, ctx);
  if (v == "true") return true;
  if (v == "false") return false;
  long long n;
  if (parse_int(v, &n)) return n != 0;  // numeric truthiness
  eval_fail(Status::invalid_argument(strprintf(
      "line %d: condition is neither boolean nor numeric: '%s'", expr.line,
      v.c_str())));
}

}  // namespace ethergrid::shell
