// Variable scopes and the function table.
//
// Scoping is a parent chain: lookups walk outward; plain assignment updates
// the scope where the name is already defined (or defines it in the current
// scope); `define` always creates/overwrites locally (loop variables,
// function parameters).  Functions are global (stored at the root).
//
// Names are interned once into a root-owned table, and each scope is a flat
// vector of (name-id, value) slots.  Scripts use a handful of variables per
// scope, so a linear scan over ids beats a std::map node walk -- and the
// re-assignment path (loop counters) never touches the allocator: the id
// compare is an integer test and the value write reuses the slot's string
// capacity.
//
// All operations are serialized through the root-owned mutex so that
// `forall` branches running on real threads (the POSIX executor) may touch
// shared scopes safely.  Branch-local scopes make most accesses
// uncontended.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "shell/ast.hpp"

namespace ethergrid::shell {

class Environment {
 public:
  // Root scope.
  Environment();
  // Child scope (function call frame, forall branch).
  explicit Environment(Environment* parent);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Innermost-out lookup.
  std::optional<std::string> get(const std::string& name) const;

  // Updates where defined; defines here if nowhere.
  void assign(const std::string& name, std::string value);

  // Defines/overwrites in this scope only.
  void define(const std::string& name, std::string value);

  bool defined(const std::string& name) const;

  // Function table (root-global).
  void define_function(const FunctionDef& def);
  // Returns nullptr if unknown.  The returned pointer stays valid while the
  // root environment lives (bodies are shared_ptr-owned).
  std::shared_ptr<const FunctionDef> find_function(
      const std::string& name) const;

 private:
  struct Var {
    std::uint32_t name;
    std::string value;
  };

  // Id for `name` if it was ever interned, 0 otherwise.  Caller holds mu_.
  std::uint32_t find_name_locked(std::string_view name) const;
  // Id for `name`, interning it on first use.  Caller holds mu_.
  std::uint32_t intern_name_locked(std::string_view name);
  Var* find_var_locked(std::uint32_t id);

  Environment* parent_;
  Environment* root_;
  std::vector<Var> vars_;
  // Root-only state (accessed through root_):
  mutable std::mutex mu_;  // serializes the whole chain
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;  // id = order
  std::map<std::string, std::shared_ptr<FunctionDef>> functions_;
};

}  // namespace ethergrid::shell
