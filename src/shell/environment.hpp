// Variable scopes and the function table.
//
// Scoping is a parent chain: lookups walk outward; plain assignment updates
// the scope where the name is already defined (or defines it in the current
// scope); `define` always creates/overwrites locally (loop variables,
// function parameters).  Functions are global (stored at the root).
//
// All operations are serialized through a root-owned mutex so that `forall`
// branches running on real threads (the POSIX executor) may touch shared
// scopes safely.  Branch-local scopes make most accesses uncontended.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "shell/ast.hpp"

namespace ethergrid::shell {

class Environment {
 public:
  // Root scope.
  Environment();
  // Child scope (function call frame, forall branch).
  explicit Environment(Environment* parent);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Innermost-out lookup.
  std::optional<std::string> get(const std::string& name) const;

  // Updates where defined; defines here if nowhere.
  void assign(const std::string& name, std::string value);

  // Defines/overwrites in this scope only.
  void define(const std::string& name, std::string value);

  bool defined(const std::string& name) const;

  // Function table (root-global).
  void define_function(const FunctionDef& def);
  // Returns nullptr if unknown.  The returned pointer stays valid while the
  // root environment lives (bodies are shared_ptr-owned).
  std::shared_ptr<const FunctionDef> find_function(
      const std::string& name) const;

 private:
  Environment* parent_;
  Environment* root_;
  std::shared_ptr<std::mutex> mu_;  // shared by the whole chain
  std::map<std::string, std::string> vars_;
  std::map<std::string, std::shared_ptr<FunctionDef>> functions_;  // root only
};

}  // namespace ethergrid::shell
