#include "shell/lexer.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace ethergrid::shell {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kWord:
      return "word";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNewline:
      return "newline";
    case TokenKind::kRedirectIn:
      return "<";
    case TokenKind::kRedirectOut:
      return ">";
    case TokenKind::kRedirectApp:
      return ">>";
    case TokenKind::kRedirectBoth:
      return ">&";
    case TokenKind::kVarIn:
      return "-<";
    case TokenKind::kVarOut:
      return "->";
    case TokenKind::kVarBoth:
      return "->&";
    case TokenKind::kEof:
      return "eof";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        pos_ += 2;  // line continuation
        ++line_;
        // A continuation joins lines but still separates tokens.
        pending_space_ = true;
        continue;
      }
      if (c == '\n' || c == ';') {
        emit_newline();
        if (c == '\n') ++line_;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        pending_space_ = true;
        ++pos_;
        continue;
      }
      if (c == '#' && pending_space_) {
        // Comments start only at token boundaries; mid-word '#' is literal
        // (so ${#} and file#1 lex as expected, like Bourne).
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '"' || c == '\'') {
        if (!lex_string(c)) return fail("unterminated string");
        continue;
      }
      if (c == '<') {
        emit_op(TokenKind::kRedirectIn, 1);
        continue;
      }
      if (c == '>') {
        if (peek(1) == '>') {
          emit_op(TokenKind::kRedirectApp, 2);
        } else if (peek(1) == '&') {
          emit_op(TokenKind::kRedirectBoth, 2);
        } else {
          emit_op(TokenKind::kRedirectOut, 1);
        }
        continue;
      }
      if (!lex_word()) return fail("bad character in word");
    }
    emit_newline();  // close the final statement
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    tokens_.push_back(eof);
    return LexResult{Status::success(), std::move(tokens_)};
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  static bool is_word_break(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' ||
           c == '"' || c == '\'' || c == '<' || c == '>';
  }

  bool lex_word() {
    std::string text;
    while (pos_ < src_.size() && !is_word_break(src_[pos_])) {
      char c = src_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= src_.size()) return false;
        if (src_[pos_ + 1] == '\n') break;  // continuation handled outside
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '$' && peek(1) == '{') {
        // ${...} is one unit even across spaces and operators (so that
        // ${mirrors:-m1 m2} stays a single word, as in Bourne).
        text += "${";
        pos_ += 2;
        while (pos_ < src_.size() && src_[pos_] != '}' && src_[pos_] != '\n') {
          text += src_[pos_++];
        }
        if (pos_ >= src_.size() || src_[pos_] != '}') {
          return false;  // unterminated ${...}
        }
        text += '}';
        ++pos_;
        continue;
      }
      text += c;
      ++pos_;
    }
    // A '-' word that stopped at '<' or '>' may be a variable redirection.
    if (text == "-" && pos_ < src_.size()) {
      if (src_[pos_] == '<') {
        ++pos_;
        push_token(TokenKind::kVarIn, "-<");
        return true;
      }
      if (src_[pos_] == '>') {
        ++pos_;
        if (pos_ < src_.size() && src_[pos_] == '&') {
          ++pos_;
          push_token(TokenKind::kVarBoth, "->&");
        } else {
          push_token(TokenKind::kVarOut, "->");
        }
        return true;
      }
    }
    Token t;
    t.kind = TokenKind::kWord;
    t.text = std::move(text);
    push(std::move(t));
    return true;
  }

  bool lex_string(char quote) {
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      char c = src_[pos_];
      if (c == '\n') ++line_;
      if (quote == '"' && c == '\\' && pos_ + 1 < src_.size()) {
        char next = src_[pos_ + 1];
        if (next == '"' || next == '\\' || next == '$') {
          text += next;
          pos_ += 2;
          continue;
        }
        if (next == 'n') {
          text += '\n';
          pos_ += 2;
          continue;
        }
        if (next == 't') {
          text += '\t';
          pos_ += 2;
          continue;
        }
      }
      text += c;
      ++pos_;
    }
    if (pos_ >= src_.size()) return false;
    ++pos_;  // closing quote
    Token t;
    t.kind = TokenKind::kString;
    t.text = std::move(text);
    t.literal = quote == '\'';
    push(std::move(t));
    return true;
  }

  void emit_op(TokenKind kind, int width) {
    pos_ += std::size_t(width);
    push_token(kind, std::string(token_kind_name(kind)));
  }

  void push_token(TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    push(std::move(t));
  }

  void push(Token t) {
    t.line = line_;
    t.glued = !pending_space_ && !tokens_.empty() &&
              tokens_.back().kind != TokenKind::kNewline &&
              tokens_.back().line == line_;
    pending_space_ = false;
    tokens_.push_back(std::move(t));
  }

  void emit_newline() {
    pending_space_ = true;
    if (tokens_.empty() || tokens_.back().kind == TokenKind::kNewline) return;
    Token t;
    t.kind = TokenKind::kNewline;
    t.line = line_;
    tokens_.push_back(std::move(t));
  }

  LexResult fail(const std::string& message) {
    return LexResult{Status::invalid_argument(
                         strprintf("line %d: %s", line_, message.c_str())),
                     {}};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool pending_space_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace ethergrid::shell
