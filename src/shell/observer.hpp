// shell::Observer: the single back-channel sink of the redesigned API.
//
// The interface itself lives in obs/ (src/obs/observer.hpp) so that layers
// below the shell -- the grid substrates, the executors -- can emit into it
// without depending on shell types.  The shell aliases it here: shell code
// and embedders say shell::Observer / shell::ObserverSet, matching the
// level of the API they program against.
//
// Migration (replaces the scattered InterpreterOptions fields):
//   options.logger       -> obs::LoggerObserver in the set
//   options.stdout_sink  )
//   options.stderr_sink  ) -> obs::StreamObserver in the set
//   options.trace        -> obs::XTraceObserver in the set
//   options.audit        -> AuditLog is itself an Observer; add it to the
//                           set (the shim field has been removed)
// shell::Session wires all of these in one call.
#pragma once

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace ethergrid::shell {

using Observer = obs::Observer;
using ObserverSet = obs::ObserverSet;

}  // namespace ethergrid::shell
