#include "shell/environment.hpp"

namespace ethergrid::shell {

Environment::Environment()
    : parent_(nullptr), root_(this), mu_(std::make_shared<std::mutex>()) {}

Environment::Environment(Environment* parent)
    : parent_(parent), root_(parent->root_), mu_(parent->mu_) {}

std::optional<std::string> Environment::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(*mu_);
  for (const Environment* env = this; env; env = env->parent_) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) return it->second;
  }
  return std::nullopt;
}

void Environment::assign(const std::string& name, std::string value) {
  std::lock_guard<std::mutex> lock(*mu_);
  for (Environment* env = this; env; env = env->parent_) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) {
      it->second = std::move(value);
      return;
    }
  }
  vars_[name] = std::move(value);
}

void Environment::define(const std::string& name, std::string value) {
  std::lock_guard<std::mutex> lock(*mu_);
  vars_[name] = std::move(value);
}

bool Environment::defined(const std::string& name) const {
  return get(name).has_value();
}

void Environment::define_function(const FunctionDef& def) {
  std::lock_guard<std::mutex> lock(*mu_);
  root_->functions_[def.name] = std::make_shared<FunctionDef>(def);
}

std::shared_ptr<const FunctionDef> Environment::find_function(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = root_->functions_.find(name);
  return it == root_->functions_.end() ? nullptr : it->second;
}

}  // namespace ethergrid::shell
