#include "shell/environment.hpp"

namespace ethergrid::shell {

Environment::Environment() : parent_(nullptr), root_(this) {}

Environment::Environment(Environment* parent)
    : parent_(parent), root_(parent->root_) {}

std::uint32_t Environment::find_name_locked(std::string_view name) const {
  const auto& ids = root_->name_ids_;
  auto it = ids.find(name);
  return it == ids.end() ? 0 : it->second;
}

std::uint32_t Environment::intern_name_locked(std::string_view name) {
  auto it = root_->name_ids_.find(name);
  if (it != root_->name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(root_->name_ids_.size() + 1);
  root_->name_ids_.emplace(name, id);
  return id;
}

Environment::Var* Environment::find_var_locked(std::uint32_t id) {
  for (Var& var : vars_) {
    if (var.name == id) return &var;
  }
  return nullptr;
}

std::optional<std::string> Environment::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(root_->mu_);
  const std::uint32_t id = find_name_locked(name);
  if (id == 0) return std::nullopt;  // never interned => defined nowhere
  for (const Environment* env = this; env; env = env->parent_) {
    for (const Var& var : env->vars_) {
      if (var.name == id) return var.value;
    }
  }
  return std::nullopt;
}

void Environment::assign(const std::string& name, std::string value) {
  std::lock_guard<std::mutex> lock(root_->mu_);
  const std::uint32_t id = intern_name_locked(name);
  for (Environment* env = this; env; env = env->parent_) {
    if (Var* var = env->find_var_locked(id)) {
      // assign() re-targets loop counters every iteration; moving into the
      // existing slot keeps its heap capacity when `value` fits in SSO.
      var->value = std::move(value);
      return;
    }
  }
  vars_.push_back(Var{id, std::move(value)});
}

void Environment::define(const std::string& name, std::string value) {
  std::lock_guard<std::mutex> lock(root_->mu_);
  const std::uint32_t id = intern_name_locked(name);
  if (Var* var = find_var_locked(id)) {
    var->value = std::move(value);
    return;
  }
  vars_.push_back(Var{id, std::move(value)});
}

bool Environment::defined(const std::string& name) const {
  return get(name).has_value();
}

void Environment::define_function(const FunctionDef& def) {
  std::lock_guard<std::mutex> lock(root_->mu_);
  root_->functions_[def.name] = std::make_shared<FunctionDef>(def);
}

std::shared_ptr<const FunctionDef> Environment::find_function(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(root_->mu_);
  auto it = root_->functions_.find(name);
  return it == root_->functions_.end() ? nullptr : it->second;
}

}  // namespace ethergrid::shell
