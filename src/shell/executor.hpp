// Executor: where ftsh meets the world.
//
// The interpreter is executor-agnostic.  An Executor supplies:
//  * external command execution (run),
//  * parallel branch execution for `forall` (run_parallel),
//  * the file_exists probe backing the `.exists.` operator,
//  * and -- because it knows which world the script lives in -- the Clock
//    (virtual or wall) that the retry machinery uses.
//
// Implementations: shell::SimExecutor (commands are registered handlers
// running in simulated time) and posix::PosixExecutor (real processes in
// their own POSIX sessions).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "core/clock.hpp"
#include "obs/observer.hpp"
#include "util/status.hpp"

namespace ethergrid::shell {

// Governor for forall branch creation -- the algorithm the paper defers:
// "The number of alternatives that a forall may execute simultaneously is
//  of course limited by any number of local resources limits such as
//  memory, disk space, or fixed kernel tables.  Thus, the creation of
//  processes must be governed by an Ethernet-like algorithm similar to
//  that of try."
//
// Two independent limits compose:
//  * max_concurrent: a per-forall window (at most this many branches in
//    flight; the next starts as one finishes);
//  * process_table_slots: a finite executor-wide "kernel process table"
//    shared by every forall of every script using this executor.  When the
//    table is full, branch creation carrier-senses it and backs off with
//    the usual exponential/jittered delays instead of failing.
struct ParallelPolicy {
  // What branch creation does when the process table is full.
  enum class OnTableFull {
    kBackoff,  // Ethernet: carrier-sense + jittered exponential delay
    kFail,     // naive: fork() returns EAGAIN and the branch (and therefore
               // the whole forall) fails -- the un-governed baseline
  };

  int max_concurrent = 0;             // 0 = unlimited
  std::int64_t process_table_slots = 0;  // 0 = unlimited
  OnTableFull on_table_full = OnTableFull::kBackoff;
  core::BackoffPolicy backoff = core::BackoffPolicy::paper_default();
};


struct CommandInvocation {
  std::vector<std::string> argv;  // expanded; argv[0] is the command name
  // Input: at most one of these is set.
  std::optional<std::string> stdin_data;  // -< var (already resolved)
  std::optional<std::string> stdin_file;  // <  file
  // Output routing.
  std::optional<std::string> stdout_file;  // > / >> / >& file
  bool stdout_append = false;
  bool capture_stdout = false;  // -> var: return out instead of printing
  bool merge_stderr = false;    // >& / ->&
  // Earliest enclosing try deadline; cooperative executors must ensure the
  // command is dead by this time (virtual-time executors get preemption from
  // the kernel's ambient deadline stack and may ignore it).
  TimePoint deadline = TimePoint::max();
  // Observability: the interpreter's command span, so executor-emitted
  // process spans and kill events attach under it.  0 = no enclosing span.
  std::uint64_t parent_span = 0;
};

struct CommandResult {
  Status status;
  std::string out;  // uncaptured, unredirected stdout (printed by the shell)
  std::string err;  // stderr (printed to the diagnostic stream)
};

class Executor : public core::Clock {
 public:
  virtual CommandResult run(const CommandInvocation& invocation) = 0;

  // Runs the branch thunks concurrently; returns each branch's status in
  // order.  If any branch fails, the remaining branches are aborted (killed
  // in simulation, session-killed under POSIX) -- the forall contract.
  virtual std::vector<Status> run_parallel(
      std::vector<std::function<Status()>> branches) = 0;

  // True when the ambient forall group (if any) has aborted because a
  // sibling branch failed.  The interpreter polls this between statements
  // so even branches that never block -- pure arithmetic loops -- honor the
  // abort promptly.  Executors whose branches are preempted externally
  // (virtual time kills the process outright) keep the default.
  virtual bool abort_requested() { return false; }

  virtual bool file_exists(const std::string& path) = 0;

  // Observability sink for executor-level emissions: process spans, kill
  // latency, process-table carrier-sense/backoff events, forall occupancy.
  // nullptr (the default) turns all of it off; the hot path is one null
  // check.  Not owned; must outlive the executor's use of it.
  void set_observers(obs::ObserverSet* observers) { observers_ = observers; }
  obs::ObserverSet* observers() const { return observers_; }

 protected:
  obs::ObserverSet* observers_ = nullptr;
};

}  // namespace ethergrid::shell
