// Lexer for ftsh scripts.
//
// Lexical rules (documented fully in docs/LANGUAGE.md):
//  * '#' starts a comment to end of line;
//  * newline and ';' separate statements; '\' before a newline continues;
//  * '<' and '>' always terminate a word ('>file' is '>' then 'file');
//    '>>' and '>&' are recognized as units;
//  * a word consisting exactly of '->', '->&' or '-<' is a variable
//    redirection operator ('-' does NOT otherwise break words, so flags
//    like '-f' and names like 'run-simulation' lex as plain words);
//  * double quotes group text into one token with interpolation preserved;
//    single quotes group literally; adjacent quoted/unquoted pieces glue
//    into one argument;
//  * backslash escapes the next character inside words and double quotes.
#pragma once

#include <string>
#include <vector>

#include "shell/token.hpp"
#include "util/status.hpp"

namespace ethergrid::shell {

struct LexResult {
  Status status;  // kInvalidArgument with line info on malformed input
  std::vector<Token> tokens;
};

LexResult lex(std::string_view source);

}  // namespace ethergrid::shell
