// Session: one-call wiring for the executor + interpreter + observer stack.
//
// Every embedder used to repeat the same dance: build an Environment, pick
// InterpreterOptions fields, thread sinks and loggers through, run, fish the
// output back out.  A Session owns that plumbing:
//
//   posix::PosixExecutor executor;
//   shell::Session session(executor, {.collect_trace = true});
//   Status s = session.run_source("try 3 times\n  fetch a b\nend");
//   session.write_trace("trace.json");      // Perfetto/Chrome JSON
//
// The Session composes the requested observers (TraceRecorder,
// MetricsRegistry, AuditLog, stream/x-trace/logger adapters plus any
// caller-supplied extras) into one ObserverSet, installs it on both the
// executor and the interpreter, and tears the wiring down on destruction.
//
// With a SimExecutor, run()/run_source() must still be called from inside a
// simulated process body (the executor's ambient-context contract); the
// Session does not spawn kernel processes for you.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "shell/audit.hpp"
#include "shell/environment.hpp"
#include "shell/executor.hpp"
#include "shell/interpreter.hpp"
#include "shell/observer.hpp"
#include "util/log.hpp"

namespace ethergrid::shell {

struct SessionOptions {
  core::BackoffPolicy backoff = core::BackoffPolicy::paper_default();
  std::uint64_t seed = 1;

  // Own a TraceRecorder; export with trace()/write_trace().
  bool collect_trace = false;
  // Process name stamped into the trace metadata.
  std::string trace_process_name = "ftsh";
  // Own a MetricsRegistry; inspect with metrics().
  bool collect_metrics = false;
  // Own an AuditLog (as an Observer); inspect with audit().
  bool collect_audit = false;

  // Bridge the diagnostic channel onto a util Logger (not owned).
  Logger* logger = nullptr;

  // Live output sinks.  Installing a sink for a stream routes that stream
  // through the sink INSTEAD of the output()/diagnostics() accumulators --
  // one consumer path per chunk, never both.
  obs::StreamObserver::Sink stdout_sink;
  obs::StreamObserver::Sink stderr_sink;

  // `set -x`-style "+ <expanded argv>" lines.  They go to xtrace_sink when
  // set, else to stderr_sink; enabling x-trace with neither is an error at
  // construction time (there would be nowhere to write).
  bool xtrace = false;
  obs::StreamObserver::Sink xtrace_sink;

  // Additional caller-owned observers, appended after the built-ins.
  std::vector<obs::Observer*> observers;
};

class Session {
 public:
  // The executor is not owned and must outlive the Session.  The Session
  // installs its ObserverSet on the executor and removes it on destruction.
  explicit Session(Executor& executor, SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Status run(const Script& script);
  Status run_source(std::string_view source);

  // The root variable scope (persists across run calls, so a script can be
  // run after seeding variables, or repeatedly with accumulating state).
  Environment& environment() { return env_; }

  // Accumulated uncaptured stdout / stderr (empty when the matching sink
  // was installed -- the sink consumed the stream instead).
  std::string output() const { return interpreter_->output(); }
  std::string diagnostics() const { return interpreter_->diagnostics(); }

  // Owned observers; nullptr when the matching collect_* flag was off.
  obs::TraceRecorder* trace() { return trace_.get(); }
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  AuditLog* audit() { return audit_.get(); }

  // The composed set (for adding/removing observers between runs).
  obs::ObserverSet& observers() { return set_; }

  // Writes the Perfetto/Chrome trace JSON; fails when collect_trace is off
  // or the file cannot be written.
  Status write_trace(const std::string& path);

 private:
  Executor* executor_;
  SessionOptions options_;
  Environment env_;
  obs::ObserverSet set_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<AuditLog> audit_;
  std::unique_ptr<obs::StreamObserver> streams_;
  std::unique_ptr<obs::XTraceObserver> xtrace_;
  std::unique_ptr<obs::LoggerObserver> logger_bridge_;
  std::unique_ptr<Interpreter> interpreter_;
};

}  // namespace ethergrid::shell
