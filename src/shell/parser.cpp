#include "shell/parser.hpp"

#include <cctype>

#include "shell/lexer.hpp"
#include "util/strings.hpp"

namespace ethergrid::shell {

namespace {

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

// Splits a raw token text into literal/variable segments: ${name} and $name.
void append_interpolated(Word* word, std::string_view text, bool splittable) {
  std::string literal;
  std::size_t i = 0;
  auto flush = [&] {
    if (!literal.empty()) {
      WordSegment segment;
      segment.text = std::move(literal);
      word->segments.push_back(std::move(segment));
      literal.clear();
    }
  };
  while (i < text.size()) {
    if (text[i] != '$') {
      literal += text[i++];
      continue;
    }
    // '$' -- try ${name} (with optional :- / := default) then $name.
    if (i + 1 < text.size() && text[i + 1] == '{') {
      std::size_t close = text.find('}', i + 2);
      if (close != std::string_view::npos) {
        flush();
        std::string content(text.substr(i + 2, close - i - 2));
        WordSegment segment;
        segment.kind = WordSegment::Kind::kVariable;
        segment.splittable = splittable;
        std::size_t marker = content.find(":-");
        if (marker == std::string::npos) {
          marker = content.find(":=");
          if (marker != std::string::npos) {
            segment.if_unset = WordSegment::IfUnset::kAssignDefault;
          }
        } else {
          segment.if_unset = WordSegment::IfUnset::kUseDefault;
        }
        if (marker != std::string::npos) {
          segment.text = content.substr(0, marker);
          segment.default_value = content.substr(marker + 2);
        } else {
          segment.text = std::move(content);
        }
        word->segments.push_back(std::move(segment));
        i = close + 1;
        continue;
      }
    }
    std::size_t j = i + 1;
    while (j < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[j])) ||
            text[j] == '_')) {
      ++j;
    }
    if (j > i + 1) {
      flush();
      WordSegment segment;
      segment.kind = WordSegment::Kind::kVariable;
      segment.text = std::string(text.substr(i + 1, j - i - 1));
      segment.splittable = splittable;
      word->segments.push_back(std::move(segment));
      i = j;
      continue;
    }
    literal += '$';  // lone dollar
    ++i;
  }
  flush();
}

void append_token_to_word(Word* word, const Token& token) {
  if (token.kind == TokenKind::kString && token.literal) {
    WordSegment segment;
    segment.text = token.text;
    word->segments.push_back(std::move(segment));
    return;
  }
  append_interpolated(word, token.text,
                      /*splittable=*/token.kind == TokenKind::kWord);
}

struct ParseError {
  Status status;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult run() {
    auto script = std::make_shared<Script>();
    try {
      script->top = parse_group({});
      expect_eof();
    } catch (const ParseError& e) {
      return ParseResult{e.status, nullptr};
    }
    return ParseResult{Status::success(), std::move(script)};
  }

 private:
  [[noreturn]] void fail(const std::string& message, int line) {
    throw ParseError{Status::invalid_argument(
        strprintf("line %d: %s", line, message.c_str()))};
  }
  [[noreturn]] void fail_here(const std::string& message) {
    fail(message, peek().line);
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool at_eof() const { return peek().kind == TokenKind::kEof; }

  void skip_newlines() {
    while (peek().kind == TokenKind::kNewline) advance();
  }

  void expect_newline(const char* after) {
    if (peek().kind == TokenKind::kNewline || at_eof()) {
      if (!at_eof()) advance();
      return;
    }
    fail_here(strprintf("expected end of line after %s, got '%s'", after,
                        peek().text.c_str()));
  }

  void expect_eof() {
    skip_newlines();
    if (!at_eof()) {
      fail_here(strprintf("unexpected '%s' (missing matching 'end'?)",
                          peek().text.c_str()));
    }
  }

  // True when the current statement-start token is the bare keyword w.
  bool at_keyword(std::string_view w) const { return peek().is_word(w); }

  // Parses statements until one of the terminator keywords appears at
  // statement start (not consumed).  Empty terminators => until EOF.
  Group parse_group(const std::vector<std::string_view>& terminators) {
    Group group;
    while (true) {
      skip_newlines();
      if (at_eof()) {
        if (terminators.empty()) return group;
        fail_here("unexpected end of script (missing 'end')");
      }
      for (std::string_view t : terminators) {
        if (at_keyword(t)) return group;
      }
      group.statements.push_back(parse_statement());
    }
  }

  StatementPtr parse_statement() {
    const Token& first = peek();
    if (first.kind != TokenKind::kWord) return parse_command();
    if (first.text == "try") return parse_try();
    if (first.text == "forany" || first.text == "forall") return parse_for();
    if (first.text == "if") return parse_if();
    if (first.text == "while") return parse_while();
    if (first.text == "function") return parse_function();
    if (first.text == "failure") {
      auto stmt = make_stmt(Statement::Kind::kFailure);
      advance();
      expect_newline("'failure'");
      return stmt;
    }
    if (first.text == "return") {
      auto stmt = make_stmt(Statement::Kind::kReturn);
      advance();
      expect_newline("'return'");
      return stmt;
    }
    if (first.text == "catch" || first.text == "end" || first.text == "else") {
      fail_here(strprintf("'%s' without a matching construct",
                          first.text.c_str()));
    }
    return parse_command();
  }

  StatementPtr make_stmt(Statement::Kind kind) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = kind;
    stmt->line = peek().line;
    return stmt;
  }

  // Collects the words of the current line, merging glued tokens.  Stops at
  // (and does not consume) newline/eof and any redirection operator.
  std::vector<Word> collect_line_words() {
    std::vector<Word> words;
    bool last_was_wordish = false;
    while (true) {
      const Token& t = peek();
      if (t.kind != TokenKind::kWord && t.kind != TokenKind::kString) {
        return words;
      }
      if (t.glued && last_was_wordish && !words.empty()) {
        append_token_to_word(&words.back(), t);
      } else {
        Word w;
        w.line = t.line;
        append_token_to_word(&w, t);
        words.push_back(std::move(w));
      }
      last_was_wordish = true;
      advance();
    }
  }

  // One word (glued sequence) as redirection target.
  Word parse_redirect_target(const char* what) {
    const Token& t = peek();
    if (t.kind != TokenKind::kWord && t.kind != TokenKind::kString) {
      fail_here(strprintf("expected %s target", what));
    }
    Word w;
    w.line = t.line;
    append_token_to_word(&w, t);
    advance();
    while ((peek().kind == TokenKind::kWord ||
            peek().kind == TokenKind::kString) &&
           peek().glued) {
      append_token_to_word(&w, peek());
      advance();
    }
    return w;
  }

  StatementPtr parse_command() {
    auto stmt = make_stmt(Statement::Kind::kCommand);
    CommandStmt& cmd = stmt->command;
    while (true) {
      const Token& t = peek();
      if (t.kind == TokenKind::kNewline || t.kind == TokenKind::kEof) break;
      switch (t.kind) {
        case TokenKind::kWord:
        case TokenKind::kString: {
          std::vector<Word> words = collect_line_words();
          for (auto& w : words) cmd.argv.push_back(std::move(w));
          break;
        }
        case TokenKind::kRedirectIn:
          advance();
          cmd.redirects.stdin_file = parse_redirect_target("'<'");
          break;
        case TokenKind::kRedirectOut:
          advance();
          cmd.redirects.stdout_file = parse_redirect_target("'>'");
          break;
        case TokenKind::kRedirectApp:
          advance();
          cmd.redirects.stdout_file = parse_redirect_target("'>>'");
          cmd.redirects.stdout_append = true;
          break;
        case TokenKind::kRedirectBoth:
          advance();
          cmd.redirects.stdout_file = parse_redirect_target("'>&'");
          cmd.redirects.merge_stderr = true;
          break;
        case TokenKind::kVarIn:
          advance();
          cmd.redirects.stdin_var = parse_redirect_target("'-<'");
          break;
        case TokenKind::kVarOut:
          advance();
          cmd.redirects.stdout_var = parse_redirect_target("'->'");
          break;
        case TokenKind::kVarBoth:
          advance();
          cmd.redirects.stdout_var = parse_redirect_target("'->&'");
          cmd.redirects.merge_stderr = true;
          break;
        default:
          fail_here("unexpected token in command");
      }
    }
    if (!at_eof()) advance();  // consume newline
    if (cmd.argv.empty()) fail("redirection without a command", stmt->line);
    return finish_command(std::move(stmt));
  }

  // Distinguishes `name=value` / `name = expr` assignments from commands.
  StatementPtr finish_command(StatementPtr stmt) {
    CommandStmt& cmd = stmt->command;
    const bool no_redirects =
        !cmd.redirects.stdin_file && !cmd.redirects.stdout_file &&
        !cmd.redirects.stdin_var && !cmd.redirects.stdout_var;

    // Case `name = expr`.
    if (no_redirects && cmd.argv.size() >= 3 &&
        cmd.argv[0].segments.size() == 1 &&
        cmd.argv[0].segments[0].kind == WordSegment::Kind::kLiteral &&
        is_identifier(cmd.argv[0].segments[0].text) &&
        cmd.argv[1].is_literal("=")) {
      std::vector<Word> value(std::make_move_iterator(cmd.argv.begin() + 2),
                              std::make_move_iterator(cmd.argv.end()));
      auto assign = make_assignment(cmd.argv[0].segments[0].text,
                                    std::move(value), stmt->line);
      return assign;
    }

    // Case `name=value...` (single token, '=' embedded in the first literal
    // segment).
    if (no_redirects && !cmd.argv.empty() && !cmd.argv[0].segments.empty() &&
        cmd.argv[0].segments[0].kind == WordSegment::Kind::kLiteral) {
      const std::string& head = cmd.argv[0].segments[0].text;
      std::size_t eq = head.find('=');
      if (eq != std::string::npos && eq > 0 &&
          is_identifier(std::string_view(head).substr(0, eq))) {
        std::string name = head.substr(0, eq);
        // Rebuild the value word: remainder of the first word after '='.
        Word value_word;
        value_word.line = cmd.argv[0].line;
        if (eq + 1 < head.size()) {
          WordSegment tail_segment;
          tail_segment.text = head.substr(eq + 1);
          value_word.segments.push_back(std::move(tail_segment));
        }
        for (std::size_t i = 1; i < cmd.argv[0].segments.size(); ++i) {
          value_word.segments.push_back(cmd.argv[0].segments[i]);
        }
        std::vector<Word> value;
        value.push_back(std::move(value_word));
        for (std::size_t i = 1; i < cmd.argv.size(); ++i) {
          value.push_back(std::move(cmd.argv[i]));
        }
        return make_assignment(std::move(name), std::move(value), stmt->line);
      }
    }
    return stmt;
  }

  StatementPtr make_assignment(std::string name, std::vector<Word> value,
                               int line) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kAssignment;
    stmt->line = line;
    stmt->assignment.name = std::move(name);
    if (value.empty()) {
      stmt->assignment.value = word_expr(Word::literal("", line));
    } else {
      std::size_t pos = 0;
      stmt->assignment.value = parse_expr_words(value, &pos, line);
      if (pos != value.size()) {
        fail(strprintf("trailing words after assignment value"), line);
      }
    }
    return stmt;
  }

  StatementPtr parse_try() {
    auto stmt = make_stmt(Statement::Kind::kTry);
    advance();  // 'try'
    TryStmt& t = stmt->try_stmt;

    std::vector<Word> header = collect_line_words();
    expect_newline("try header");

    // Strip a trailing "<word> times".
    if (header.size() >= 2 && header.back().is_literal("times")) {
      header.pop_back();
      t.attempts_word = std::move(header.back());
      header.pop_back();
      if (!header.empty() && header.back().is_literal("or")) {
        header.pop_back();
      }
    }
    if (!header.empty()) {
      if (!header.front().is_literal("for")) {
        fail("bad try header: expected 'for <duration>' and/or '<n> times'",
             stmt->line);
      }
      header.erase(header.begin());
      if (header.empty()) {
        fail("try: 'for' needs a duration", stmt->line);
      }
      t.time_words = std::move(header);
    }
    if (t.time_words.empty() && !t.attempts_word) {
      fail("try needs a time limit and/or an attempt count", stmt->line);
    }

    t.body = parse_group({"catch", "end"});
    if (at_keyword("catch")) {
      advance();
      expect_newline("'catch'");
      t.catch_body = parse_group({"end"});
    }
    advance();  // 'end'
    expect_newline("'end'");
    return stmt;
  }

  StatementPtr parse_for() {
    auto stmt = make_stmt(Statement::Kind::kFor);
    ForStmt& f = stmt->for_stmt;
    f.kind = peek().text == "forany" ? ForStmt::Kind::kAny : ForStmt::Kind::kAll;
    const std::string which = peek().text;
    advance();

    if (peek().kind != TokenKind::kWord || !is_identifier(peek().text)) {
      fail_here(which + ": expected a variable name");
    }
    f.variable = advance().text;
    if (!peek().is_word("in")) fail_here(which + ": expected 'in'");
    advance();
    f.list = collect_line_words();
    if (f.list.empty()) fail_here(which + ": empty alternative list");
    expect_newline("alternative list");

    f.body = parse_group({"end"});
    advance();  // 'end'
    expect_newline("'end'");
    return stmt;
  }

  StatementPtr parse_if() {
    auto stmt = make_stmt(Statement::Kind::kIf);
    advance();  // 'if'
    stmt->if_stmt.condition = parse_condition("if");
    stmt->if_stmt.then_body = parse_group({"else", "end"});
    if (at_keyword("else")) {
      advance();
      if (at_keyword("if")) {
        // else-if chain: the else body is exactly one nested if.
        Group g;
        g.statements.push_back(parse_if());
        stmt->if_stmt.else_body = std::move(g);
        return stmt;  // nested parse consumed 'end'
      }
      expect_newline("'else'");
      stmt->if_stmt.else_body = parse_group({"end"});
    }
    advance();  // 'end'
    expect_newline("'end'");
    return stmt;
  }

  StatementPtr parse_while() {
    auto stmt = make_stmt(Statement::Kind::kWhile);
    advance();  // 'while'
    stmt->while_stmt.condition = parse_condition("while");
    stmt->while_stmt.body = parse_group({"end"});
    advance();  // 'end'
    expect_newline("'end'");
    return stmt;
  }

  ExprPtr parse_condition(const char* who) {
    const int line = peek().line;
    std::vector<Word> words = collect_line_words();
    if (words.empty()) fail(strprintf("%s: missing condition", who), line);
    expect_newline("condition");
    std::size_t pos = 0;
    ExprPtr e = parse_expr_words(words, &pos, line);
    if (pos != words.size()) {
      fail(strprintf("%s: trailing words after condition", who), line);
    }
    return e;
  }

  StatementPtr parse_function() {
    auto stmt = make_stmt(Statement::Kind::kFunction);
    advance();  // 'function'
    if (peek().kind != TokenKind::kWord || !is_identifier(peek().text)) {
      fail_here("function: expected a name");
    }
    stmt->function.name = advance().text;
    while (peek().kind == TokenKind::kWord) {
      if (!is_identifier(peek().text)) {
        fail_here("function: bad parameter name");
      }
      stmt->function.parameters.push_back(advance().text);
    }
    expect_newline("function header");
    stmt->function.body =
        std::make_shared<Group>(parse_group({"end"}));
    advance();  // 'end'
    expect_newline("'end'");
    return stmt;
  }

  // ---- expression parsing over a word list (precedence climbing) --------

  static std::optional<BinaryOp> binary_op(const Word& w) {
    struct Entry {
      std::string_view text;
      BinaryOp op;
    };
    static constexpr Entry kOps[] = {
        {".lt.", BinaryOp::kLt}, {".gt.", BinaryOp::kGt},
        {".le.", BinaryOp::kLe}, {".ge.", BinaryOp::kGe},
        {".eq.", BinaryOp::kEq}, {".ne.", BinaryOp::kNe},
        {".and.", BinaryOp::kAnd}, {".or.", BinaryOp::kOr},
        {".add.", BinaryOp::kAdd}, {".sub.", BinaryOp::kSub},
        {".mul.", BinaryOp::kMul}, {".div.", BinaryOp::kDiv},
        {".mod.", BinaryOp::kMod},
    };
    for (const Entry& e : kOps) {
      if (w.is_literal(e.text)) return e.op;
    }
    return std::nullopt;
  }

  static int precedence(BinaryOp op) {
    switch (op) {
      case BinaryOp::kOr:
        return 1;
      case BinaryOp::kAnd:
        return 2;
      case BinaryOp::kLt:
      case BinaryOp::kGt:
      case BinaryOp::kLe:
      case BinaryOp::kGe:
      case BinaryOp::kEq:
      case BinaryOp::kNe:
        return 3;
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
        return 4;
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        return 5;
    }
    return 0;
  }

  static ExprPtr word_expr(Word w) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kValue;
    e->line = w.line;
    e->value = std::move(w);
    return e;
  }

  ExprPtr parse_expr_words(std::vector<Word>& words, std::size_t* pos,
                           int line) {
    return parse_binary(words, pos, line, 1);
  }

  ExprPtr parse_unary(std::vector<Word>& words, std::size_t* pos, int line) {
    if (*pos >= words.size()) fail("expression: missing operand", line);
    if (words[*pos].is_literal(".not.") ||
        words[*pos].is_literal(".exists.")) {
      const bool is_not = words[*pos].is_literal(".not.");
      const int op_line = words[*pos].line;
      ++*pos;
      auto e = std::make_unique<Expr>();
      e->kind = is_not ? Expr::Kind::kNot : Expr::Kind::kExists;
      e->line = op_line;
      // Fortran-style: .not. binds looser than comparisons, so
      // `.not. a .lt. b` negates the comparison; .exists. takes one word.
      e->child = is_not ? parse_binary(words, pos, line, 3)
                        : parse_unary(words, pos, line);
      return e;
    }
    if (binary_op(words[*pos])) {
      fail(strprintf("expression: operator '%s' needs a left operand",
                     words[*pos].describe().c_str()),
           words[*pos].line);
    }
    return word_expr(std::move(words[(*pos)++]));
  }

  ExprPtr parse_binary(std::vector<Word>& words, std::size_t* pos, int line,
                       int min_precedence) {
    ExprPtr lhs = parse_unary(words, pos, line);
    while (*pos < words.size()) {
      auto op = binary_op(words[*pos]);
      if (!op || precedence(*op) < min_precedence) break;
      const int op_line = words[*pos].line;
      ++*pos;
      ExprPtr rhs = parse_binary(words, pos, line, precedence(*op) + 1);
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = *op;
      e->line = op_line;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Word::describe() const {
  std::string out;
  for (const auto& seg : segments) {
    if (seg.kind == WordSegment::Kind::kVariable) {
      out += "${" + seg.text + "}";
    } else {
      out += seg.text;
    }
  }
  return out;
}

ParseResult parse_script(std::string_view source) {
  LexResult lexed = lex(source);
  if (lexed.status.failed()) return ParseResult{lexed.status, nullptr};
  return Parser(std::move(lexed.tokens)).run();
}

}  // namespace ethergrid::shell
