// Recursive-descent parser for ftsh.  See docs/LANGUAGE.md for the grammar.
#pragma once

#include <memory>
#include <string>

#include "shell/ast.hpp"
#include "shell/token.hpp"
#include "util/status.hpp"

namespace ethergrid::shell {

struct ParseResult {
  Status status;  // kInvalidArgument with "line N: ..." on syntax errors
  std::shared_ptr<Script> script;
};

// Parses a complete script from source text (lexes internally).
ParseResult parse_script(std::string_view source);

}  // namespace ethergrid::shell
