#include "shell/session.hpp"

#include <stdexcept>

#include "shell/parser.hpp"

namespace ethergrid::shell {

Session::Session(Executor& executor, SessionOptions options)
    : executor_(&executor), options_(std::move(options)) {
  if (options_.collect_trace) {
    trace_ = std::make_unique<obs::TraceRecorder>(options_.trace_process_name);
    set_.add(trace_.get());
  }
  if (options_.collect_metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    set_.add(metrics_.get());
  }
  if (options_.collect_audit) {
    audit_ = std::make_unique<AuditLog>();
    set_.add(audit_.get());
  }
  if (options_.stdout_sink || options_.stderr_sink) {
    streams_ = std::make_unique<obs::StreamObserver>(options_.stdout_sink,
                                                     options_.stderr_sink);
    set_.add(streams_.get());
  }
  if (options_.xtrace) {
    obs::StreamObserver::Sink sink =
        options_.xtrace_sink ? options_.xtrace_sink : options_.stderr_sink;
    if (!sink) {
      throw std::invalid_argument(
          "Session: xtrace needs xtrace_sink or stderr_sink");
    }
    xtrace_ = std::make_unique<obs::XTraceObserver>(std::move(sink));
    set_.add(xtrace_.get());
  }
  if (options_.logger) {
    logger_bridge_ = std::make_unique<obs::LoggerObserver>(options_.logger);
    set_.add(logger_bridge_.get());
  }
  for (obs::Observer* extra : options_.observers) {
    if (extra) set_.add(extra);
  }

  obs::ObserverSet* observers = set_.empty() ? nullptr : &set_;
  executor_->set_observers(observers);

  InterpreterOptions interp;
  interp.backoff = options_.backoff;
  interp.seed = options_.seed;
  interp.observers = observers;
  // Single-path routing: a stream with a live sink is the sink's to print;
  // the accumulator stays empty rather than duplicating it.
  interp.capture_stdout = !options_.stdout_sink;
  interp.capture_stderr = !options_.stderr_sink;
  interpreter_ = std::make_unique<Interpreter>(*executor_, interp);
}

Session::~Session() {
  if (executor_->observers() == &set_) executor_->set_observers(nullptr);
}

Status Session::run(const Script& script) {
  return interpreter_->run(script, env_);
}

Status Session::run_source(std::string_view source) {
  return interpreter_->run_source(source, env_);
}

Status Session::write_trace(const std::string& path) {
  if (!trace_) {
    return Status::failure("Session: collect_trace was not enabled");
  }
  return trace_->write_file(path);
}

}  // namespace ethergrid::shell
