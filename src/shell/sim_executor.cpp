#include "shell/sim_executor.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "core/sim_clock.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace ethergrid::shell {

SimExecutor::ContextBinding::ContextBinding(SimExecutor& executor,
                                            sim::Context& ctx) {
  assert(executor.kernel_->current_context() == &ctx &&
         "ContextBinding installed outside the bound process's body");
  (void)executor;
  (void)ctx;
}

SimExecutor::ContextBinding::~ContextBinding() = default;

SimExecutor::SimExecutor(sim::Kernel& kernel) : kernel_(&kernel) {
  register_builtins();
}

sim::Context& SimExecutor::current() const {
  sim::Context* ctx = kernel_->current_context();
  if (!ctx) {
    throw std::logic_error(
        "SimExecutor used outside a simulated process; executor calls must "
        "run inside a process body on this executor's kernel");
  }
  return *ctx;
}

void SimExecutor::register_command(const std::string& name, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  commands_[name] = std::move(handler);
}

void SimExecutor::set_parallel_policy(const ParallelPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  parallel_policy_ = policy;
  if (policy.process_table_slots > 0) {
    process_table_ =
        std::make_unique<sim::Resource>(*kernel_, policy.process_table_slots);
  } else {
    process_table_.reset();
  }
}

void SimExecutor::write_file(const std::string& path, std::string contents) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(contents);
}

std::optional<std::string> SimExecutor::read_file(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

void SimExecutor::remove_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

bool SimExecutor::file_exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

TimePoint SimExecutor::now() { return current().now(); }

void SimExecutor::sleep(Duration d) { current().sleep(d); }

Status SimExecutor::with_deadline(TimePoint deadline,
                                  const std::function<Status()>& fn) {
  core::SimClock clock(current());
  return clock.with_deadline(deadline, fn);
}

CommandResult SimExecutor::run(const CommandInvocation& invocation) {
  sim::Context& ctx = current();

  // Call through a stable pointer (std::map nodes do not move) so stateful
  // handlers keep their state across invocations.  The registry lock is NOT
  // held while the handler runs: handlers block in virtual time, and a held
  // lock would deadlock the cooperative scheduler.
  Handler* handler = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = commands_.find(invocation.argv[0]);
    if (it != commands_.end()) handler = &it->second;
  }
  if (!handler) {
    // "The program could not be loaded and run."
    return CommandResult{
        Status::not_found("unknown command: " + invocation.argv[0]), "", ""};
  }

  // Resolve file stdin into data so handlers see one input form.  The copy
  // is confined to that cold path: the common invocation goes to the
  // handler as-is, so the interpreter's reused scratch invocation crosses
  // this call without touching the allocator.
  const CommandInvocation* inv = &invocation;
  CommandInvocation resolved;
  if (invocation.stdin_file && !invocation.stdin_data) {
    auto contents = read_file(*invocation.stdin_file);
    if (!contents) {
      return CommandResult{
          Status::not_found("no such file: " + *invocation.stdin_file), "",
          ""};
    }
    resolved = invocation;
    resolved.stdin_data = std::move(*contents);
    inv = &resolved;
  }

  CommandResult result = (*handler)(ctx, *inv);

  std::string out = std::move(result.out);
  if (inv->merge_stderr) {
    out += result.err;
    result.err.clear();
  }
  if (inv->stdout_file) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string& file = files_[*inv->stdout_file];
    if (inv->stdout_append) {
      file += out;
    } else {
      file = std::move(out);
    }
    result.out.clear();
  } else {
    result.out = std::move(out);
  }
  return result;
}

std::vector<Status> SimExecutor::run_parallel(
    std::vector<std::function<Status()>> branches) {
  // Interned once per process; emission then carries a plain integer.
  static const obs::SiteId kForallSite = obs::intern_site("forall");
  static const obs::SiteId kTableSite = obs::intern_site("forall.table");
  sim::Context& parent = current();
  ParallelPolicy policy;
  sim::Resource* table;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = parallel_policy_;
    table = process_table_.get();
  }
  const std::size_t n = branches.size();
  std::vector<Status> statuses(n, Status::killed("forall branch aborted"));
  std::vector<sim::ProcessHandle> children(n);  // null until spawned
  sim::Event progress(*kernel_);
  std::size_t finished = 0;
  std::size_t active = 0;
  std::size_t next = 0;
  bool any_failed = false;

  // Whatever happens (including an enclosing deadline unwinding the parent
  // mid-wait), no branch may outlive this call.  A killed branch's only
  // cleanup (the process-table slot, RAII in the child body) touches
  // executor-owned state, never this frame.
  struct KillAll {
    sim::Context& parent;
    std::vector<sim::ProcessHandle>& children;
    ~KillAll() {
      for (auto& child : children) {
        if (child && !child->finished()) parent.kill(child, "forall aborted");
      }
    }
  } kill_all{parent, children};

  auto spawn_one = [&](std::size_t i) {
    ++active;
    if (observers_) {
      obs::ObsEvent event;
      event.kind = obs::ObsEvent::Kind::kOccupancy;
      event.time = parent.now();
      event.site = kForallSite;
      event.value = double(active);
      observers_->on_event(event);
    }
    children[i] = parent.spawn(
        parent.process().name() + "/forall" + std::to_string(i),
        [this, &branches, &statuses, &progress, &finished, &active,
         &any_failed, table, i](sim::Context& child_ctx) {
          // The table slot belongs to the executor and must come back even
          // if this branch is killed mid-flight.
          struct SlotReturn {
            sim::Resource* table;
            ~SlotReturn() {
              if (table) table->release();
            }
          } slot{table};
          ContextBinding binding(*this, child_ctx);
          obs::Span span;
          if (observers_) {
            span.kind = obs::SpanKind::kProcess;
            span.name = child_ctx.process().name();
            span.track = i + 1;  // lane 0 is the spawning script
            span.start = child_ctx.now();
            observers_->begin_span(span);
          }
          Status status = branches[i]();  // Interrupted propagates past us
          statuses[i] = std::move(status);
          if (observers_) {
            span.end = child_ctx.now();
            span.status = statuses[i];
            observers_->end_span(span);
          }
          ++finished;
          --active;
          if (statuses[i].failed()) any_failed = true;
          progress.pulse();
        });
  };

  // Ethernet-governed branch creation: respect the per-forall window and
  // carrier-sense the shared process table, backing off (jittered,
  // exponential) while it is busy.  Enclosing try deadlines preempt the
  // waits as usual.
  core::Backoff backoff(policy.backoff, parent.rng());
  while (finished < n && !any_failed) {
    bool table_busy = false;
    while (next < n && !any_failed &&
           (policy.max_concurrent <= 0 ||
            active < std::size_t(policy.max_concurrent))) {
      if (table && !table->try_acquire()) {
        if (observers_) {
          char detail[32];
          std::snprintf(detail, sizeof(detail), "slots=%lld",
                        (long long)policy.process_table_slots);
          obs::ObsEvent event;
          event.kind = obs::ObsEvent::Kind::kTableFull;
          event.time = parent.now();
          event.site = kTableSite;
          event.detail = detail;
          observers_->on_event(event);
        }
        if (policy.on_table_full == ParallelPolicy::OnTableFull::kFail) {
          // The naive baseline: fork() fails, the branch fails, the forall
          // fails.  (The Ethernet alternative backs off below.)
          statuses[next++] = Status::resource_exhausted(
              "cannot create process: table full");
          any_failed = true;
          break;
        }
        table_busy = true;
        break;
      }
      spawn_one(next++);
    }
    if (finished >= n || any_failed) break;
    if (table_busy && active == 0) {
      // Nothing of ours is running to free a slot: pure contention with
      // other scripts.  Back off like any Ethernet client.
      const Duration delay = backoff.next();
      if (observers_) {
        obs::ObsEvent event;
        event.kind = obs::ObsEvent::Kind::kBackoff;
        event.time = parent.now();
        event.site = kTableSite;
        event.value = to_seconds(delay);
        observers_->on_event(event);
      }
      (void)parent.wait_for(progress, delay);
    } else {
      parent.wait(progress);
      backoff.reset();
    }
  }

  if (any_failed) {
    for (auto& child : children) {
      if (child && !child->finished()) {
        parent.kill(child, "forall sibling failed");
      }
    }
  }
  for (auto& child : children) {
    if (child) parent.join(child);
  }
  return statuses;
}

void SimExecutor::register_builtins() {
  register_command("echo", [](sim::Context&, const CommandInvocation& inv) {
    std::vector<std::string> args(inv.argv.begin() + 1, inv.argv.end());
    return CommandResult{Status::success(), join(args, " ") + "\n", ""};
  });

  register_command("true", [](sim::Context&, const CommandInvocation&) {
    return CommandResult{Status::success(), "", ""};
  });

  register_command("false", [](sim::Context&, const CommandInvocation&) {
    return CommandResult{Status::failure("false"), "", ""};
  });

  register_command("fail", [](sim::Context&, const CommandInvocation& inv) {
    std::vector<std::string> args(inv.argv.begin() + 1, inv.argv.end());
    return CommandResult{Status::failure(join(args, " ")), "", ""};
  });

  // sleep <duration>: blocks in virtual time (preempted by try deadlines).
  register_command("sleep", [](sim::Context& ctx,
                               const CommandInvocation& inv) {
    if (inv.argv.size() < 2) {
      return CommandResult{Status::invalid_argument("sleep: missing duration"),
                           "", ""};
    }
    std::vector<std::string> args(inv.argv.begin() + 1, inv.argv.end());
    Duration d{};
    if (!parse_duration(join(args, " "), &d)) {
      return CommandResult{
          Status::invalid_argument("sleep: bad duration: " + join(args, " ")),
          "", ""};
    }
    ctx.sleep(d);
    return CommandResult{Status::success(), "", ""};
  });

  // flaky <percent> [message]: fails that percentage of invocations.
  register_command("flaky", [](sim::Context& ctx,
                               const CommandInvocation& inv) {
    long long percent = 50;
    if (inv.argv.size() >= 2) {
      if (!parse_int(inv.argv[1], &percent) || percent < 0 || percent > 100) {
        return CommandResult{
            Status::invalid_argument("flaky: bad percentage " + inv.argv[1]),
            "", ""};
      }
    }
    if (ctx.rng().chance(double(percent) / 100.0)) {
      return CommandResult{Status::failure("flaky failure"), "", ""};
    }
    return CommandResult{Status::success(), "", ""};
  });

  // cat: stdin (resolved) to stdout.
  register_command("cat", [](sim::Context&, const CommandInvocation& inv) {
    return CommandResult{Status::success(), inv.stdin_data.value_or(""), ""};
  });

  // exists <path>: succeeds iff the file exists (probe-before-use idiom).
  register_command("exists", [this](sim::Context&,
                                    const CommandInvocation& inv) {
    if (inv.argv.size() != 2) {
      return CommandResult{Status::invalid_argument("exists: need a path"),
                           "", ""};
    }
    if (file_exists(inv.argv[1])) {
      return CommandResult{Status::success(), "", ""};
    }
    return CommandResult{Status::not_found(inv.argv[1]), "", ""};
  });

  // append-file <path> <text...>: direct VFS write (test/demo helper).
  register_command("append-file", [this](sim::Context&,
                                         const CommandInvocation& inv) {
    if (inv.argv.size() < 2) {
      return CommandResult{Status::invalid_argument("append-file: need path"),
                           "", ""};
    }
    std::vector<std::string> args(inv.argv.begin() + 2, inv.argv.end());
    std::lock_guard<std::mutex> lock(mu_);
    files_[inv.argv[1]] += join(args, " ");
    return CommandResult{Status::success(), "", ""};
  });
}

}  // namespace ethergrid::shell
