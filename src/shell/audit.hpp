// AuditLog: the structured back channel of section 4.
//
// "While executing a script, ftsh keeps a log of varying detail about the
//  program.  Online or post-mortem analysis may determine more detailed
//  reasons for process failure, the exact resources used to execute the
//  program, the frequency of each failure branch, and so forth."
//
// The interpreter records every command execution and every try/forany/
// forall outcome here (via the ObserverSet: AuditLog is an obs::Observer).
// Entries aggregate by construct site, so a command retried 40 times is one
// row with execution and failure counts -- exactly the "frequency of each
// failure branch" view.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "obs/observer.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace ethergrid::shell {

struct AuditEntry {
  enum class Kind { kCommand, kTry, kForany, kForall, kFunction, kFault };

  Kind kind = Kind::kCommand;
  int line = 0;
  std::string label;  // command name / construct summary

  std::int64_t executions = 0;  // times this site ran (attempts, for try)
  std::int64_t failures = 0;
  Duration busy_total{};        // virtual/wall time spent inside
  Duration backoff_total{};     // try only: time spent delaying
  // Failure reasons seen at this site, with counts (capped; see kMaxReasons).
  std::map<std::string, std::int64_t> failure_reasons;

  static constexpr std::size_t kMaxReasons = 16;
};

std::string_view audit_kind_name(AuditEntry::Kind kind);

// An AuditLog is an Observer: add it to the ObserverSet and every finished
// command / try / forany / forall span folds into its aggregate table, and
// every kFault event becomes a kFault row.
class AuditLog : public obs::Observer {
 public:
  // Records one execution of the site; merges into the aggregate entry.
  void record(AuditEntry::Kind kind, int line, const std::string& label,
              const Status& status, Duration elapsed,
              Duration backoff = Duration(0));

  // Observer: span-site aggregation.  Only the span kinds the audit table
  // models (command/try/forany/forall) are recorded; attempts, functions
  // and process spans pass through untouched, matching the legacy shim.
  void on_span_end(const obs::Span& span) override;
  void on_event(const obs::ObsEvent& event) override;

  // Aggregated entries ordered by (line, kind, label).
  std::vector<AuditEntry> entries() const;

  std::int64_t total_executions() const;
  std::int64_t total_failures() const;

  // Human-readable post-mortem table.
  std::string report() const;

  void clear();

 private:
  struct Key {
    AuditEntry::Kind kind;
    int line;
    std::string label;
    bool operator<(const Key& other) const {
      if (line != other.line) return line < other.line;
      if (kind != other.kind) return kind < other.kind;
      return label < other.label;
    }
  };

  mutable std::mutex mu_;
  std::map<Key, AuditEntry> entries_;
};

// Adapts an AuditLog into a FaultInjector observer: every fired fault
// becomes a kFault row labelled "<site> <kind>", so the post-mortem table
// shows exactly which injected fault each site absorbed, with counts.
// The log must outlive the injector the observer is installed on.
std::function<void(const core::FaultEvent&)> fault_observer(AuditLog& log);

}  // namespace ethergrid::shell
