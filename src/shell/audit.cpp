#include "shell/audit.hpp"

#include "util/strings.hpp"

namespace ethergrid::shell {

std::string_view audit_kind_name(AuditEntry::Kind kind) {
  switch (kind) {
    case AuditEntry::Kind::kCommand:
      return "command";
    case AuditEntry::Kind::kTry:
      return "try";
    case AuditEntry::Kind::kForany:
      return "forany";
    case AuditEntry::Kind::kForall:
      return "forall";
    case AuditEntry::Kind::kFunction:
      return "function";
    case AuditEntry::Kind::kFault:
      return "fault";
  }
  return "?";
}

void AuditLog::record(AuditEntry::Kind kind, int line,
                      const std::string& label, const Status& status,
                      Duration elapsed, Duration backoff) {
  std::lock_guard<std::mutex> lock(mu_);
  AuditEntry& entry = entries_[Key{kind, line, label}];
  entry.kind = kind;
  entry.line = line;
  entry.label = label;
  ++entry.executions;
  entry.busy_total += elapsed;
  entry.backoff_total += backoff;
  if (status.failed()) {
    ++entry.failures;
    std::string reason(status_code_name(status.code()));
    if (entry.failure_reasons.size() < AuditEntry::kMaxReasons ||
        entry.failure_reasons.count(reason)) {
      ++entry.failure_reasons[reason];
    }
  }
}

void AuditLog::on_span_end(const obs::Span& span) {
  AuditEntry::Kind kind;
  switch (span.kind) {
    case obs::SpanKind::kCommand:
      kind = AuditEntry::Kind::kCommand;
      break;
    case obs::SpanKind::kTry:
      kind = AuditEntry::Kind::kTry;
      break;
    case obs::SpanKind::kForany:
      kind = AuditEntry::Kind::kForany;
      break;
    case obs::SpanKind::kForall:
      kind = AuditEntry::Kind::kForall;
      break;
    default:
      return;  // scripts, attempts, functions, processes: not table rows
  }
  record(kind, span.line, std::string(span.name), span.status,
         span.end - span.start, span.backoff);
}

void AuditLog::on_event(const obs::ObsEvent& event) {
  if (event.kind != obs::ObsEvent::Kind::kFault) return;
  record(AuditEntry::Kind::kFault, 0, std::string(obs::site_name(event.site)),
         Status::failure(std::string(event.detail)), Duration(0));
}

std::vector<AuditEntry> AuditLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

std::int64_t AuditLog::total_executions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.executions;
  return total;
}

std::int64_t AuditLog::total_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.failures;
  return total;
}

std::string AuditLog::report() const {
  std::string out =
      "line  kind      runs  fail  busy        backoff     what\n";
  for (const AuditEntry& e : entries()) {
    out += strprintf("%-5d %-9s %-5lld %-5lld %-11s %-11s %s",
                     e.line, std::string(audit_kind_name(e.kind)).c_str(),
                     (long long)e.executions, (long long)e.failures,
                     format_duration(e.busy_total).c_str(),
                     format_duration(e.backoff_total).c_str(),
                     e.label.c_str());
    if (!e.failure_reasons.empty()) {
      out += "  [";
      bool first = true;
      for (const auto& [reason, count] : e.failure_reasons) {
        if (!first) out += ", ";
        first = false;
        out += strprintf("%s x%lld", reason.c_str(), (long long)count);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

void AuditLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::function<void(const core::FaultEvent&)> fault_observer(AuditLog& log) {
  return [&log](const core::FaultEvent& event) {
    log.record(AuditEntry::Kind::kFault, 0, event.site + " " + event.kind,
               Status::failure(event.detail), Duration(0));
  };
}

}  // namespace ethergrid::shell
