// Token stream for the fault tolerant shell (ftsh).
#pragma once

#include <string>
#include <string_view>

namespace ethergrid::shell {

enum class TokenKind {
  kWord,          // command name, argument, keyword, expression operator
  kString,        // quoted word (kept distinct so keywords are not matched)
  kNewline,       // statement separator (also ';')
  kRedirectIn,    // <   file
  kRedirectOut,   // >   file
  kRedirectApp,   // >>  file
  kRedirectBoth,  // >&  file       (stdout+stderr)
  kVarIn,         // -<  var
  kVarOut,        // ->  var
  kVarBoth,       // ->& var
  kEof,
};

std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  // For kWord/kString: the text (quotes stripped, escapes resolved,
  // interpolation NOT yet performed -- that happens at evaluation).
  std::string text;
  int line = 0;
  // kString only: single-quoted, no interpolation at eval time.
  bool literal = false;
  // No whitespace between this token and the previous one: "a"b is one
  // argument assembled from two glued tokens.
  bool glued = false;

  bool is_word(std::string_view w) const {
    return kind == TokenKind::kWord && text == w;
  }
};

}  // namespace ethergrid::shell
