// Time types shared by virtual (simulated) and wall-clock code.
//
// All of ethergrid measures time in microseconds.  Duration is a plain
// std::chrono::microseconds; TimePoint is a chrono time_point on a private
// epoch tag, so durations and time points cannot be mixed up and arithmetic
// comes from <chrono>.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ethergrid {

using Duration = std::chrono::microseconds;

// Tag clock for ethergrid time points.  Never used to *read* time -- that is
// what core::Clock implementations are for -- it only anchors the epoch.
struct EpochTag {
  using rep = std::int64_t;
  using period = std::micro;
  using duration = Duration;
  static constexpr bool is_steady = true;
};

using TimePoint = std::chrono::time_point<EpochTag, Duration>;

constexpr TimePoint kEpoch{};  // t = 0

// Convenience literal-ish constructors.
constexpr Duration usec(std::int64_t n) { return Duration(n); }
constexpr Duration msec(std::int64_t n) { return Duration(n * 1000); }
// Accepts integral and floating seconds; exact up to ~2^53 microseconds.
constexpr Duration sec(double s) {
  return Duration(static_cast<std::int64_t>(s * 1e6));
}
constexpr Duration minutes(std::int64_t n) { return sec(n * 60); }
constexpr Duration hours(std::int64_t n) { return sec(n * 3600); }

constexpr double to_seconds(Duration d) { return d.count() / 1e6; }
constexpr double to_seconds(TimePoint t) {
  return to_seconds(t.time_since_epoch());
}

// "1.5s", "250ms", "2h3m4s"-style compact rendering for logs.
std::string format_duration(Duration d);

// Parses ftsh-style duration phrases: a sequence of <number> <unit> pairs
// where unit is one of seconds/minutes/hours/days (singular, plural, or the
// short forms s/m/h/d; "secs"/"mins"/"hrs" also accepted).  Examples the
// paper uses: "30 minutes", "1 hour", "60 seconds", "900 seconds".
// Bare numbers are seconds.  Returns false on malformed input.
bool parse_duration(const std::string& text, Duration* out);

}  // namespace ethergrid
