// Structured logging: the "administrative back channel".
//
// The paper argues the *user* interface should stay simple (success/failure)
// while debugging and tuning happen through a back channel.  ftsh keeps "a
// log of varying detail" for online or post-mortem analysis: detailed
// failure reasons, resources used, frequency of each failure branch.  Logger
// is that channel.  Records go to an optional sink (tests install a
// capturing sink; the ftsh tool writes to a file or stderr).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ethergrid {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

std::string_view log_level_name(LogLevel level);

struct LogRecord {
  LogLevel level;
  TimePoint time;          // virtual or wall time of the emitting component
  std::string component;   // e.g. "shell", "schedd", "retry"
  std::string message;
};

// Thread-safe log dispatcher.  A Logger can be shared by every component of
// one simulation / one shell instance; each record carries the component
// name.  The time of a record is supplied by the caller because only the
// caller knows which clock it lives on.
class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  explicit Logger(LogLevel threshold = LogLevel::kWarn)
      : threshold_(threshold) {}

  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  // Replaces the sink.  A null sink restores the default (stderr).
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const { return level >= threshold_; }

  void log(LogLevel level, TimePoint t, std::string component,
           std::string message);

  // A process-wide logger for code with no better context.  Defaults to
  // kWarn threshold, stderr sink.
  static Logger& global();

 private:
  LogLevel threshold_;
  std::mutex mu_;
  Sink sink_;  // empty => stderr
};

// Captures records into a vector; handy for tests asserting on the
// back-channel content.
class CapturingSink {
 public:
  Logger::Sink as_sink();
  std::vector<LogRecord> records() const;
  std::size_t count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::shared_ptr<std::vector<LogRecord>> records_ =
      std::make_shared<std::vector<LogRecord>>();
};

}  // namespace ethergrid
