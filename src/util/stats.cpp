#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ethergrid {

void SummaryStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double SummaryStats::variance() const {
  return count_ ? m2_ / double(count_) : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

namespace {
int bucket_index(std::int64_t us) {
  if (us <= 1) return 0;
  return 63 - __builtin_clzll(static_cast<unsigned long long>(us));
}
}  // namespace

void LatencyHistogram::add(Duration d) {
  const std::int64_t us = std::max<std::int64_t>(0, d.count());
  int idx = bucket_index(us);
  if (idx >= kBuckets) idx = kBuckets - 1;
  ++buckets_[idx];
  ++total_;
  min_ = std::min(min_, d);
  max_ = std::max(max_, d);
}

Duration LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return Duration(0);
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(total_ - 1);
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (double(seen + buckets_[i]) > target) {
      // Interpolate within bucket [2^i, 2^(i+1)).
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i);
      const double hi = std::ldexp(1.0, i + 1);
      const double frac =
          buckets_[i] > 1 ? (target - double(seen)) / double(buckets_[i]) : 0;
      return Duration(static_cast<std::int64_t>(lo + frac * (hi - lo)));
    }
    seen += buckets_[i];
  }
  return max_;
}

double TimeSeries::min_value() const {
  double best = 0.0;
  bool first = true;
  for (const auto& p : points_) {
    if (first || p.value < best) best = p.value;
    first = false;
  }
  return best;
}

double TimeSeries::max_value() const {
  double best = 0.0;
  bool first = true;
  for (const auto& p : points_) {
    if (first || p.value > best) best = p.value;
    first = false;
  }
  return best;
}

std::int64_t EventSeries::count_before(TimePoint t) const {
  const auto& pts = series_.points();
  auto it = std::upper_bound(
      pts.begin(), pts.end(), t,
      [](TimePoint value, const TimeSeries::Point& p) { return value < p.t; });
  if (it == pts.begin()) return 0;
  return static_cast<std::int64_t>((it - 1)->value);
}

}  // namespace ethergrid
