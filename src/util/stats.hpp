// Measurement primitives used by experiments and by component telemetry.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ethergrid {

// Online mean/variance/min/max (Welford).
class SummaryStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Power-of-two bucketed histogram for latencies (microsecond counts).
// Bucket i holds values in [2^i, 2^(i+1)); bucket 0 also takes 0.
class LatencyHistogram {
 public:
  void add(Duration d);
  std::int64_t count() const { return total_; }
  // Linear-interpolated quantile within the matched bucket; q in [0,1].
  Duration quantile(double q) const;
  Duration min() const { return min_; }
  Duration max() const { return max_; }

 private:
  static constexpr int kBuckets = 64;
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t total_ = 0;
  Duration min_ = Duration::max();
  Duration max_ = Duration::min();
};

// A sampled series: (time, value) pairs.  Used for the timeline figures
// (available FDs, cumulative jobs, ...).
class TimeSeries {
 public:
  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void sample(TimePoint t, double value) { points_.push_back({t, value}); }

  struct Point {
    TimePoint t;
    double value;
  };

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Last sampled value, or fallback when empty.
  double last(double fallback = 0.0) const {
    return points_.empty() ? fallback : points_.back().value;
  }

  // Smallest / largest sampled value (0 when empty).
  double min_value() const;
  double max_value() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Cumulative event counter with timestamps: each call to record() appends
// (t, total so far).  This is the "Number of Events" style series in
// Figures 6-7.
class EventSeries {
 public:
  explicit EventSeries(std::string name = "") : series_(std::move(name)) {}

  void record(TimePoint t) { series_.sample(t, double(++total_)); }

  std::int64_t total() const { return total_; }
  const TimeSeries& series() const { return series_; }
  const std::string& name() const { return series_.name(); }

  // Number of events recorded at or before t.
  std::int64_t count_before(TimePoint t) const;

 private:
  std::int64_t total_ = 0;
  TimeSeries series_;
};

}  // namespace ethergrid
