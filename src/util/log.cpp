#include "util/log.hpp"

#include <cstdio>

namespace ethergrid {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, TimePoint t, std::string component,
                 std::string message) {
  if (!enabled(level)) return;
  LogRecord rec{level, t, std::move(component), std::move(message)};
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(rec);
  } else {
    std::fprintf(stderr, "[%10.3f] %-5s %-10s %s\n", to_seconds(rec.time),
                 std::string(log_level_name(rec.level)).c_str(),
                 rec.component.c_str(), rec.message.c_str());
  }
}

Logger& Logger::global() {
  static Logger logger(LogLevel::kWarn);
  return logger;
}

Logger::Sink CapturingSink::as_sink() {
  auto records = records_;
  auto mu = std::shared_ptr<std::mutex>(records_, &mu_);
  return [records, mu](const LogRecord& rec) {
    std::lock_guard<std::mutex> lock(*mu);
    records->push_back(rec);
  };
}

std::vector<LogRecord> CapturingSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *records_;
}

std::size_t CapturingSink::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_->size();
}

void CapturingSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_->clear();
}

}  // namespace ethergrid
