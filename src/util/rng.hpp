// Deterministic random number generation.
//
// Every stochastic choice in ethergrid (backoff jitter, producer file sizes,
// server selection, ...) draws from a named per-entity stream derived from a
// single experiment seed, so whole experiments replay bit-identically.
//
// Generator: xoshiro256** (Blackman & Vigna), seeded via splitmix64.  Both
// are implemented here; no dependence on <random> engines (their streams are
// not portable across standard library implementations).
#pragma once

#include <cstdint>
#include <string_view>

namespace ethergrid {

// splitmix64 step: advances *state and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t* state);

// 64-bit FNV-1a hash, used to derive named child streams.
std::uint64_t fnv1a64(std::string_view s);

class Rng {
 public:
  // Zero seed is remapped internally (xoshiro must not be all-zero state).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent child stream from this stream's seed and a name.
  // Does not perturb this stream's state.
  Rng stream(std::string_view name) const;
  Rng stream(std::uint64_t index) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial.
  bool chance(double p);

  // Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

}  // namespace ethergrid
