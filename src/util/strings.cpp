#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ethergrid {

std::vector<std::string> split(std::string_view text,
                               std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && delims.find(text[i]) != std::string_view::npos) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() && delims.find(text[i]) == std::string_view::npos) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool is_integer(std::string_view text) {
  long long unused;
  return parse_int(text, &unused);
}

bool parse_int(std::string_view text, long long* out) {
  text = trim(text);
  if (text.empty()) return false;
  std::size_t i = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
    if (i == text.size()) return false;
  }
  long long value = 0;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
    value = value * 10 + (text[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ethergrid
