// Status: the untyped-failure result type used throughout ethergrid.
//
// The paper's central philosophical point is that failure *detail* is
// unreliable at integration boundaries, so recovery logic must not branch on
// it.  Status carries a category and message anyway -- for logging and
// post-mortem analysis (the "administrative back channel") -- but the retry
// machinery in core/ only ever inspects ok()/failed().
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace ethergrid {

// Broad failure categories.  These exist for diagnostics only; see file
// comment.  kTimeout and kKilled are distinguished because the shell runtime
// itself needs to know whether a deadline fired (to unwind to the owning
// `try`) versus an ordinary command failure.
enum class StatusCode {
  kOk = 0,
  kFailure,            // generic failure (non-zero exit, thrown `failure`, ...)
  kTimeout,            // a deadline expired
  kKilled,             // forcibly terminated (session kill / interrupt)
  kNotFound,           // missing file, unknown command, ...
  kResourceExhausted,  // out of FDs, disk space, queue slots, ...
  kInvalidArgument,    // malformed input; retry will not help
  kIoError,            // read/write/transfer error
  kUnavailable,        // server down, connection refused
};

// Human-readable name of a StatusCode ("OK", "TIMEOUT", ...).
std::string_view status_code_name(StatusCode code);

class Status {
 public:
  // Default-constructed Status is success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status success() { return Status(); }
  static Status failure(std::string msg = "") {
    return Status(StatusCode::kFailure, std::move(msg));
  }
  static Status timeout(std::string msg = "") {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status killed(std::string msg = "") {
    return Status(StatusCode::kKilled, std::move(msg));
  }
  static Status not_found(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status resource_exhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status invalid_argument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status io_error(std::string msg = "") {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool failed() const { return !ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CATEGORY: message".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace ethergrid
