#include "util/rng.hpp"

#include <cmath>

namespace ethergrid {

std::uint64_t splitmix64_next(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed ? seed : 0x6a09e667f3bcc909ULL;
  for (auto& word : s_) word = splitmix64_next(&sm);
}

Rng Rng::stream(std::string_view name) const {
  return Rng(seed_ ^ fnv1a64(name));
}

Rng Rng::stream(std::uint64_t index) const {
  // Mix the index through splitmix so streams 0,1,2,... are decorrelated.
  std::uint64_t sm = index + 0x9e3779b97f4a7c15ULL;
  return Rng(seed_ ^ splitmix64_next(&sm));
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return (next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

}  // namespace ethergrid
