// Small string helpers used by the shell front end and the harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ethergrid {

// Splits on any run of characters from `delims`; no empty tokens.
std::vector<std::string> split(std::string_view text,
                               std::string_view delims = " \t");

// Splits on every occurrence of the single character `delim`; keeps empty
// fields (CSV-style).
std::vector<std::string> split_keep_empty(std::string_view text, char delim);

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

// True if `text` parses completely as a (possibly signed) decimal integer.
bool is_integer(std::string_view text);

// Parses a complete signed integer; returns false on any trailing garbage.
bool parse_int(std::string_view text, long long* out);

// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ethergrid
