#include "util/status.hpp"

namespace ethergrid {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kFailure:
      return "FAILURE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kKilled:
      return "KILLED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ethergrid
