#include "util/time.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace ethergrid {

std::string format_duration(Duration d) {
  char buf[64];
  const std::int64_t us = d.count();
  const std::int64_t abs_us = us < 0 ? -us : us;
  if (abs_us < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  } else if (abs_us < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3gms", us / 1e3);
  } else if (abs_us < 60LL * 1000000) {
    std::snprintf(buf, sizeof(buf), "%.4gs", us / 1e6);
  } else if (abs_us < 3600LL * 1000000) {
    const std::int64_t whole_min = us / 60000000;
    const double rem_s = (us - whole_min * 60000000) / 1e6;
    std::snprintf(buf, sizeof(buf), "%lldm%.3gs",
                  static_cast<long long>(whole_min), rem_s);
  } else {
    const std::int64_t whole_h = us / 3600000000LL;
    const std::int64_t rem_min = (us - whole_h * 3600000000LL) / 60000000;
    std::snprintf(buf, sizeof(buf), "%lldh%lldm",
                  static_cast<long long>(whole_h),
                  static_cast<long long>(rem_min));
  }
  return buf;
}

namespace {

// Returns multiplier in microseconds for a unit word, or 0 if unknown.
std::int64_t unit_multiplier(std::string_view unit) {
  if (unit == "s" || unit == "sec" || unit == "secs" || unit == "second" ||
      unit == "seconds") {
    return 1000000;
  }
  if (unit == "ms" || unit == "msec" || unit == "msecs" ||
      unit == "millisecond" || unit == "milliseconds") {
    return 1000;
  }
  if (unit == "m" || unit == "min" || unit == "mins" || unit == "minute" ||
      unit == "minutes") {
    return 60LL * 1000000;
  }
  if (unit == "h" || unit == "hr" || unit == "hrs" || unit == "hour" ||
      unit == "hours") {
    return 3600LL * 1000000;
  }
  if (unit == "d" || unit == "day" || unit == "days") {
    return 86400LL * 1000000;
  }
  return 0;
}

}  // namespace

bool parse_duration(const std::string& text, Duration* out) {
  std::int64_t total_us = 0;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool saw_any = false;

  auto skip_ws = [&] {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };

  skip_ws();
  while (i < n) {
    // Parse a (possibly fractional) number.
    std::size_t start = i;
    while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                     text[i] == '.')) {
      ++i;
    }
    if (i == start) return false;
    double value = 0;
    try {
      value = std::stod(text.substr(start, i - start));
    } catch (...) {
      return false;
    }
    skip_ws();
    // Parse an optional unit word.
    start = i;
    while (i < n && std::isalpha(static_cast<unsigned char>(text[i]))) ++i;
    std::int64_t mult = 1000000;  // bare number => seconds
    if (i > start) {
      std::string unit = text.substr(start, i - start);
      for (char& c : unit) c = static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)));
      mult = unit_multiplier(unit);
      if (mult == 0) return false;
    }
    total_us += static_cast<std::int64_t>(std::llround(value * double(mult)));
    saw_any = true;
    skip_ws();
  }
  if (!saw_any) return false;
  *out = Duration(total_us);
  return true;
}

}  // namespace ethergrid
