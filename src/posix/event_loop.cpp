#include "posix/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>

#include "posix/syscall_shim.hpp"

namespace ethergrid::posix {

PumpResult pump_fd(int fd, std::string* sink) {
  char buf[4096];
  while (true) {
    // xread retries EINTR internally; the shim also lets tests inject
    // short reads and interrupt storms here.
    ssize_t n = xread(fd, buf, sizeof(buf));
    if (n > 0) {
      sink->append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return PumpResult::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return PumpResult::kOpen;
    return PumpResult::kError;
  }
}

void kill_session(long pid, int signo) {
  if (::kill(static_cast<pid_t>(-pid), signo) == 0 || errno != ESRCH) return;
  ::kill(static_cast<pid_t>(pid), signo);
}

ChildExitWatch::ChildExitWatch(long pid) {
#ifdef SYS_pidfd_open
  // Raw syscall: glibc grew a wrapper only in 2.36.  O_CLOEXEC is implied
  // for pidfds; the fd polls readable once the child becomes a zombie.
  long fd = ::syscall(SYS_pidfd_open, static_cast<pid_t>(pid), 0u);
  fd_ = fd >= 0 ? static_cast<int>(fd) : -1;
#else
  (void)pid;
#endif
}

ChildExitWatch::~ChildExitWatch() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

int g_sigchld_pipe[2] = {-1, -1};
struct sigaction g_prev_sigchld;

void sigchld_handler(int signo, siginfo_t* info, void* ucontext) {
  const int saved_errno = errno;
  const char byte = 0;
  // Best-effort: a full pipe already guarantees pending pollers wake.
  (void)!::write(g_sigchld_pipe[1], &byte, 1);
  // Chain whatever handler the application had installed.
  if (g_prev_sigchld.sa_flags & SA_SIGINFO) {
    if (g_prev_sigchld.sa_sigaction) {
      g_prev_sigchld.sa_sigaction(signo, info, ucontext);
    }
  } else if (g_prev_sigchld.sa_handler != SIG_IGN &&
             g_prev_sigchld.sa_handler != SIG_DFL &&
             g_prev_sigchld.sa_handler != nullptr) {
    g_prev_sigchld.sa_handler(signo);
  }
  errno = saved_errno;
}

bool install_sigchld_pipe() {
  if (::pipe2(g_sigchld_pipe, O_CLOEXEC | O_NONBLOCK) != 0) return false;
  struct sigaction sa;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_SIGINFO | SA_RESTART | SA_NOCLDSTOP;
  sa.sa_sigaction = &sigchld_handler;
  if (::sigaction(SIGCHLD, &sa, &g_prev_sigchld) != 0) {
    ::close(g_sigchld_pipe[0]);
    ::close(g_sigchld_pipe[1]);
    g_sigchld_pipe[0] = g_sigchld_pipe[1] = -1;
    return false;
  }
  return true;
}

}  // namespace

int SigchldSelfPipe::fd() {
  static const bool ok = install_sigchld_pipe();
  return ok ? g_sigchld_pipe[0] : -1;
}

void SigchldSelfPipe::drain() {
  if (g_sigchld_pipe[0] < 0) return;
  char buf[64];
  while (::read(g_sigchld_pipe[0], buf, sizeof(buf)) > 0) {
  }
}

}  // namespace ethergrid::posix
