#include "posix/syscall_shim.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

namespace ethergrid::posix {

namespace {

// Plain functions (not lambdas) so the table entries are ordinary function
// pointers with external call semantics identical to libc.
int real_pipe2(int fds[2], int flags) { return ::pipe2(fds, flags); }
pid_t real_fork() { return ::fork(); }
int real_dup2(int oldfd, int newfd) { return ::dup2(oldfd, newfd); }
ssize_t real_read(int fd, void* buf, size_t count) {
  return ::read(fd, buf, count);
}
ssize_t real_write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}
pid_t real_waitpid(pid_t pid, int* status, int options) {
  return ::waitpid(pid, status, options);
}

constexpr SyscallHooks kRealHooks = {
    &real_pipe2, &real_fork, &real_dup2,
    &real_read,  &real_write, &real_waitpid,
};

SyscallHooks g_hooks = kRealHooks;

}  // namespace

SyscallHooks& syscall_hooks() { return g_hooks; }

void reset_syscall_hooks() { g_hooks = kRealHooks; }

ScopedSyscallHooks::ScopedSyscallHooks(const SyscallHooks& hooks)
    : previous_(g_hooks) {
  g_hooks = hooks;
}

ScopedSyscallHooks::~ScopedSyscallHooks() { g_hooks = previous_; }

int xpipe2(int fds[2], int flags) {
  int r;
  do {
    r = g_hooks.pipe2(fds, flags);
  } while (r < 0 && errno == EINTR);
  return r;
}

pid_t xfork() {
  // fork() is not restartable (EINTR is not a documented failure), but the
  // indirection lets tests fail it with EAGAIN/ENOMEM.
  return g_hooks.fork();
}

int xdup2(int oldfd, int newfd) {
  int r;
  do {
    r = g_hooks.dup2(oldfd, newfd);
  } while (r < 0 && errno == EINTR);
  return r;
}

ssize_t xread(int fd, void* buf, size_t count) {
  ssize_t n;
  do {
    n = g_hooks.read(fd, buf, count);
  } while (n < 0 && errno == EINTR);
  return n;
}

ssize_t xwrite(int fd, const void* buf, size_t count) {
  ssize_t n;
  do {
    n = g_hooks.write(fd, buf, count);
  } while (n < 0 && errno == EINTR);
  return n;
}

pid_t xwaitpid(pid_t pid, int* status, int options) {
  pid_t r;
  do {
    r = g_hooks.waitpid(pid, status, options);
  } while (r < 0 && errno == EINTR);
  return r;
}

}  // namespace ethergrid::posix
