// Event-driven child supervision primitives for the POSIX executor.
//
// The paper's cancellation protocol ("processes are first gently requested
// to exit, then forcibly terminated") only delivers its latency promise if
// the supervising shell *notices* exits, EOFs, and aborts immediately.
// These pieces replace the old fixed-interval polling loop:
//
//  * pump_fd       -- drain a nonblocking pipe, distinguishing EOF from
//                     hard errors (the latter must also end supervision);
//  * kill_session  -- session kill with a pre-setsid fallback so an early
//                     kill is never silently lost to ESRCH;
//  * ChildExitWatch-- a pollable fd that becomes readable when the child
//                     exits (pidfd on modern kernels);
//  * SigchldSelfPipe-- process-wide fallback wake source when pidfd is
//                     unavailable.
#pragma once

#include <string>

namespace ethergrid::posix {

// Result of draining a nonblocking read end.
enum class PumpResult {
  kOpen,   // drained everything currently available; stream still open
  kEof,    // orderly end of stream
  kError,  // hard read error (EBADF, EIO, ...): the stream is dead
};

// Reads everything currently available from fd into *sink.  Never blocks
// (fd must be O_NONBLOCK).  EINTR is retried; EAGAIN means kOpen; any other
// error is kError -- callers must close the fd and stop supervising it, or
// a dead descriptor would keep the supervision loop alive forever.
PumpResult pump_fd(int fd, std::string* sink);

// Signals the child's session (kill(-pid)).  A freshly forked child only
// becomes its own process group once it reaches setsid(); until then the
// group kill fails with ESRCH, so fall back to signalling the pid directly
// rather than losing the kill.  (The fallback only fires in that pre-setsid
// window, when the child cannot yet have been reaped, so there is no
// pid-reuse hazard.)
void kill_session(long pid, int signo);

// Pollable child-exit notification.  fd() is a pidfd (readable once the
// child is a zombie) or -1 when the kernel lacks pidfd_open -- then the
// caller must combine SigchldSelfPipe::fd() with a bounded poll timeout.
class ChildExitWatch {
 public:
  explicit ChildExitWatch(long pid);
  ~ChildExitWatch();
  ChildExitWatch(const ChildExitWatch&) = delete;
  ChildExitWatch& operator=(const ChildExitWatch&) = delete;

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// Process-wide SIGCHLD self-pipe.  install() is idempotent and chains the
// previous handler; fd() is the nonblocking read end.  The pipe is shared
// by every concurrent supervision loop, so a reader may consume a byte
// meant for a sibling: treat readability as a hint and keep a bounded poll
// timeout as backstop.  Only used when pidfd is unavailable.
class SigchldSelfPipe {
 public:
  // Returns the read end, installing the handler on first use; -1 if the
  // pipe or handler could not be installed.
  static int fd();
  // Drains any pending wake bytes (nonblocking).
  static void drain();
};

}  // namespace ethergrid::posix
