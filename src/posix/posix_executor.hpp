// PosixExecutor: ftsh over real processes.
//
// Implements the paper's runtime precisely where POSIX allows:
//  * every external command runs in its own session (setsid), so a deadline
//    or abort can terminate the entire process tree with one kill(-pid);
//  * termination is polite first (SIGTERM), forcible after a grace period
//    (SIGKILL) -- "processes are first gently requested to exit";
//  * `forall` branches run on threads; when one fails, the sessions of the
//    sibling branches' running commands are killed and no new commands are
//    launched ("all outstanding branches are aborted");
//  * stdout/stderr are captured through pipes so the interpreter can route
//    them to variables, files, or the terminal without interleaving partial
//    results.
//
// As the paper concedes, a process can escape by making its own session;
// this is a resource-management tool, not a security mechanism.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "shell/executor.hpp"

namespace ethergrid::posix {

struct PosixExecutorOptions {
  // Grace between SIGTERM and SIGKILL on timeout/abort.
  Duration kill_grace = sec(5);
  // Backstop wait bound for the supervision loop when the kernel lacks
  // pidfd_open (the SIGCHLD self-pipe is shared, so a wake byte can be
  // consumed by a sibling loop).  On pidfd kernels supervision is fully
  // event-driven and this value never enters the hot path.
  Duration poll_interval = msec(20);
};

class PosixExecutor final : public shell::Executor {
 public:
  explicit PosixExecutor(PosixExecutorOptions options = {});
  ~PosixExecutor() override;

  // --- Executor interface ---
  shell::CommandResult run(const shell::CommandInvocation& invocation) override;
  std::vector<Status> run_parallel(
      std::vector<std::function<Status()>> branches) override;
  bool file_exists(const std::string& path) override;
  TimePoint now() override;
  void sleep(Duration d) override;
  Status with_deadline(TimePoint deadline,
                       const std::function<Status()>& fn) override;
  bool abort_requested() override;

  // Terminates every command session this executor currently has in flight
  // (used by the ftsh tool's SIGTERM handler: kill our children before
  // dying, per the paper's nested-shell protocol).
  void terminate_all(int signo);

  // Installs the forall branch-creation governor: max_concurrent bounds
  // each forall's in-flight branches; process_table_slots is an
  // executor-wide cap shared by all foralls (branch creation blocks with
  // jittered backoff while the table is full).
  void set_parallel_policy(const shell::ParallelPolicy& policy);

 private:
  struct BranchState {
    std::atomic<long> current_pid{0};  // pid of the running command, if any
  };
  // One forall in flight.  Abort is broadcast on three channels at once so
  // every kind of waiter wakes immediately: the atomic (cheap checks), the
  // condition variable (sleeping branches, table-slot backoff), and an
  // eventfd (supervision loops blocked in poll alongside child fds).
  struct ParallelGroup {
    ParallelGroup();
    ~ParallelGroup();
    void signal_abort();

    std::atomic<bool> abort{false};
    std::mutex m;
    std::condition_variable cv;
    int abort_fd = -1;  // eventfd; written once on abort, never drained
    std::vector<std::unique_ptr<BranchState>> branches;
  };

  // Ambient branch identity for commands started inside run_parallel.
  static thread_local ParallelGroup* tls_group_;
  static thread_local BranchState* tls_branch_;

  PosixExecutorOptions options_;
  core::WallClock clock_;
  std::mutex mu_;                 // guards live_pids_ and the policy/table
  std::vector<long> live_pids_;   // sessions in flight (for terminate_all)
  shell::ParallelPolicy parallel_policy_;
  std::int64_t table_free_ = 0;   // meaningful when slots are limited

  void track_pid(long pid);
  void untrack_pid(long pid);
};

}  // namespace ethergrid::posix
