#include "posix/posix_executor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/eventfd.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "posix/event_loop.hpp"
#include "posix/syscall_shim.hpp"
#include "util/strings.hpp"

namespace ethergrid::posix {

thread_local PosixExecutor::ParallelGroup* PosixExecutor::tls_group_ = nullptr;
thread_local PosixExecutor::BranchState* PosixExecutor::tls_branch_ = nullptr;

namespace {

// Writing to a dead child's stdin must be an EPIPE error, not process death.
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)done;
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// All parent-side pipe and redirection fds are O_CLOEXEC: a sibling forall
// branch forking concurrently must not capture them, or a fast-exiting
// command's stdout never reaches EOF until the unrelated sibling exits.
int open_cloexec(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags | O_CLOEXEC, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

// Ceiling ms conversion for poll(2); never returns 0 for a positive wait
// (a truncated-to-zero timeout would busy-spin just short of a deadline).
int poll_timeout_ms(Duration d) {
  if (d <= Duration(0)) return 0;
  const std::int64_t ms = (d.count() + 999) / 1000;
  return static_cast<int>(std::min<std::int64_t>(ms, 60'000));
}

}  // namespace

PosixExecutor::ParallelGroup::ParallelGroup()
    : abort_fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

PosixExecutor::ParallelGroup::~ParallelGroup() {
  if (abort_fd >= 0) ::close(abort_fd);
}

void PosixExecutor::ParallelGroup::signal_abort() {
  if (abort.exchange(true)) return;  // only the first failure broadcasts
  {
    // Empty critical section: pairs with the cv.wait in sleeping branches
    // so the store cannot slip between their predicate check and the wait.
    std::lock_guard<std::mutex> lock(m);
  }
  cv.notify_all();
  if (abort_fd >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(abort_fd, &one, sizeof(one));
  }
}

PosixExecutor::PosixExecutor(PosixExecutorOptions options)
    : options_(options) {
  ignore_sigpipe_once();
}

PosixExecutor::~PosixExecutor() = default;

TimePoint PosixExecutor::now() { return clock_.now(); }

void PosixExecutor::sleep(Duration d) {
  // Inside a forall branch, an abort must cut the sleep short immediately;
  // the group condition variable delivers the wake with no polling.
  if (ParallelGroup* group = tls_group_) {
    std::unique_lock<std::mutex> lock(group->m);
    group->cv.wait_for(lock, d, [&] { return group->abort.load(); });
    return;
  }
  clock_.sleep(d);
}

Status PosixExecutor::with_deadline(TimePoint deadline,
                                    const std::function<Status()>& fn) {
  return clock_.with_deadline(deadline, fn);
}

bool PosixExecutor::abort_requested() {
  return tls_group_ != nullptr && tls_group_->abort.load();
}

bool PosixExecutor::file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

void PosixExecutor::track_pid(long pid) {
  std::lock_guard<std::mutex> lock(mu_);
  live_pids_.push_back(pid);
}

void PosixExecutor::untrack_pid(long pid) {
  std::lock_guard<std::mutex> lock(mu_);
  live_pids_.erase(std::remove(live_pids_.begin(), live_pids_.end(), pid),
                   live_pids_.end());
}

void PosixExecutor::set_parallel_policy(const shell::ParallelPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  parallel_policy_ = policy;
  table_free_ = policy.process_table_slots;
}

void PosixExecutor::terminate_all(int signo) {
  std::lock_guard<std::mutex> lock(mu_);
  for (long pid : live_pids_) {
    kill_session(pid, signo);
  }
}

shell::CommandResult PosixExecutor::run(
    const shell::CommandInvocation& invocation) {
  using shell::CommandResult;

  ParallelGroup* const group = tls_group_;
  if (group && group->abort.load()) {
    return CommandResult{Status::killed("forall branch aborted"), "", ""};
  }

  // ---- set up I/O endpoints in the parent (better error reporting) ----
  int stdin_read = -1, stdin_write = -1;
  int stdout_read = -1, stdout_write = -1;
  int stderr_read = -1, stderr_write = -1;

  auto fail_setup = [&](const std::string& message) {
    close_fd(&stdin_read);
    close_fd(&stdin_write);
    close_fd(&stdout_read);
    close_fd(&stdout_write);
    close_fd(&stderr_read);
    close_fd(&stderr_write);
    return CommandResult{Status::io_error(message), "", ""};
  };

  if (invocation.stdin_data) {
    int fds[2];
    if (xpipe2(fds, O_CLOEXEC) != 0) {
      return fail_setup("pipe: " + std::string(strerror(errno)));
    }
    stdin_read = fds[0];
    stdin_write = fds[1];
  } else if (invocation.stdin_file) {
    stdin_read = open_cloexec(invocation.stdin_file->c_str(), O_RDONLY);
    if (stdin_read < 0) {
      return fail_setup("cannot open " + *invocation.stdin_file + ": " +
                        strerror(errno));
    }
  } else {
    stdin_read = open_cloexec("/dev/null", O_RDONLY);
  }

  if (invocation.stdout_file) {
    int flags = O_WRONLY | O_CREAT |
                (invocation.stdout_append ? O_APPEND : O_TRUNC);
    stdout_write = open_cloexec(invocation.stdout_file->c_str(), flags, 0644);
    if (stdout_write < 0) {
      return fail_setup("cannot open " + *invocation.stdout_file + ": " +
                        strerror(errno));
    }
  } else {
    int fds[2];
    if (xpipe2(fds, O_CLOEXEC) != 0) {
      return fail_setup("pipe: " + std::string(strerror(errno)));
    }
    stdout_read = fds[0];
    stdout_write = fds[1];
  }

  if (!invocation.merge_stderr) {
    int fds[2];
    if (xpipe2(fds, O_CLOEXEC) != 0) {
      return fail_setup("pipe: " + std::string(strerror(errno)));
    }
    stderr_read = fds[0];
    stderr_write = fds[1];
  }

  // ---- fork/exec in a fresh session ----
  std::vector<char*> argv;
  argv.reserve(invocation.argv.size() + 1);
  for (const std::string& arg : invocation.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = xfork();
  if (pid < 0) return fail_setup("fork: " + std::string(strerror(errno)));
  if (pid == 0) {
    // Child: own session so kill(-pid) reaches every descendant.  The
    // dup2'd standard fds lose O_CLOEXEC; every other endpoint closes
    // itself at exec.  dup2(fd, fd) is a no-op that would *keep* the flag
    // (possible when the parent's own stdio was closed), so clear it
    // explicitly in that case.
    auto install_stdio = [](int from, int to) {
      if (from == to) {
        const int flags = ::fcntl(from, F_GETFD, 0);
        if (flags >= 0) ::fcntl(from, F_SETFD, flags & ~FD_CLOEXEC);
      } else {
        // xdup2 reads a function pointer and loops on EINTR: both safe in
        // the fork/exec window.
        xdup2(from, to);
      }
    };
    ::setsid();
    install_stdio(stdin_read, 0);
    install_stdio(stdout_write, 1);
    install_stdio(invocation.merge_stderr ? stdout_write : stderr_write, 2);
    ::execvp(argv[0], argv.data());
    _exit(127);  // shell convention: command not runnable
  }

  track_pid(pid);
  if (tls_branch_) tls_branch_->current_pid.store(pid);

  obs::Span process_span;
  char pid_detail[32];  // backs the span's detail view through end_span
  if (observers_) {
    std::snprintf(pid_detail, sizeof(pid_detail), "pid %ld", (long)pid);
    process_span.kind = obs::SpanKind::kProcess;
    process_span.parent = invocation.parent_span;
    process_span.name = invocation.argv[0];
    process_span.detail = pid_detail;
    process_span.start = clock_.now();
    observers_->begin_span(process_span);
  }

  // Parent keeps only its pipe ends, nonblocking.
  close_fd(&stdin_read);
  close_fd(&stdout_write);
  close_fd(&stderr_write);
  if (stdin_write >= 0) set_nonblocking(stdin_write);
  if (stdout_read >= 0) set_nonblocking(stdout_read);
  if (stderr_read >= 0) set_nonblocking(stderr_read);

  std::string out, err;
  std::size_t stdin_sent = 0;
  const std::string stdin_data = invocation.stdin_data.value_or("");
  if (stdin_write >= 0 && stdin_data.empty()) close_fd(&stdin_write);

  enum class KillPhase { kNone, kTermSent, kKillSent };
  KillPhase phase = KillPhase::kNone;
  TimePoint term_time{};
  bool killed_for_deadline = false;
  bool killed_for_abort = false;

  int exit_status = 0;
  bool exited = false;

  // Exit notification: pidfd when the kernel has it; otherwise the shared
  // SIGCHLD self-pipe plus a bounded poll timeout as backstop.
  ChildExitWatch exit_watch(pid);
  const int sigchld_fd = exit_watch.fd() < 0 ? SigchldSelfPipe::fd() : -1;

  // Drains one pipe; EOF and hard errors both retire the fd, so a dead
  // descriptor can never pin the loop open.
  auto drain = [](int* fd, std::string* sink) {
    if (*fd < 0) return;
    if (pump_fd(*fd, sink) != PumpResult::kOpen) close_fd(fd);
  };

  while (true) {
    // Feed stdin.
    if (stdin_write >= 0) {
      while (stdin_sent < stdin_data.size()) {
        ssize_t n = xwrite(stdin_write, stdin_data.data() + stdin_sent,
                           stdin_data.size() - stdin_sent);
        if (n > 0) {
          stdin_sent += std::size_t(n);
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else {
          stdin_sent = stdin_data.size();  // EPIPE etc: stop feeding
        }
      }
      if (stdin_sent >= stdin_data.size()) close_fd(&stdin_write);
    }

    // Drain output.
    drain(&stdout_read, &out);
    drain(&stderr_read, &err);

    // Reap?
    if (!exited) {
      int status = 0;
      pid_t r = xwaitpid(pid, &status, WNOHANG);
      if (r == pid) {
        exited = true;
        exit_status = status;
      }
    }
    if (exited && stdout_read < 0 && stderr_read < 0) break;
    if (exited && phase != KillPhase::kNone) {
      // Killed: do not wait for grandchildren holding the pipes open.
      if (stdout_read >= 0) pump_fd(stdout_read, &out);
      if (stderr_read >= 0) pump_fd(stderr_read, &err);
      break;
    }

    // Deadline / abort enforcement on the whole session.
    const bool want_abort = group && group->abort.load();
    const bool past_deadline = clock_.now() >= invocation.deadline;
    if (!exited && phase == KillPhase::kNone && (want_abort || past_deadline)) {
      killed_for_abort = want_abort;
      killed_for_deadline = past_deadline && !want_abort;
      kill_session(pid, SIGTERM);
      phase = KillPhase::kTermSent;
      term_time = clock_.now();
    } else if (!exited && phase == KillPhase::kTermSent &&
               clock_.now() - term_time >= options_.kill_grace) {
      kill_session(pid, SIGKILL);
      phase = KillPhase::kKillSent;
    }

    // Sleep until the next event: pipe readiness, child exit, group abort,
    // or the next enforcement edge (deadline, then TERM->KILL escalation).
    // There is no fixed polling interval on this path.
    struct pollfd fds[6];
    nfds_t nfds = 0;
    if (stdin_write >= 0) fds[nfds++] = {stdin_write, POLLOUT, 0};
    if (stdout_read >= 0) fds[nfds++] = {stdout_read, POLLIN, 0};
    if (stderr_read >= 0) fds[nfds++] = {stderr_read, POLLIN, 0};
    if (!exited && exit_watch.fd() >= 0) {
      fds[nfds++] = {exit_watch.fd(), POLLIN, 0};
    }
    if (!exited && sigchld_fd >= 0) fds[nfds++] = {sigchld_fd, POLLIN, 0};
    // The abort eventfd stays readable once signalled, so only poll it
    // while an abort could still change our behaviour (before any kill).
    if (group && phase == KillPhase::kNone && group->abort_fd >= 0) {
      fds[nfds++] = {group->abort_fd, POLLIN, 0};
    }

    int timeout = -1;  // wait indefinitely: every exit path has a wake fd
    if (!exited && phase == KillPhase::kNone &&
        invocation.deadline != TimePoint::max()) {
      timeout = poll_timeout_ms(invocation.deadline - clock_.now());
    } else if (!exited && phase == KillPhase::kTermSent) {
      timeout = poll_timeout_ms(term_time + options_.kill_grace -
                                clock_.now());
    }
    if (!exited && exit_watch.fd() < 0) {
      // Fallback mode: the shared self-pipe may be drained by a sibling, so
      // bound the wait; this is the only place poll_interval survives.
      const int backstop = poll_timeout_ms(options_.poll_interval);
      timeout = timeout < 0 ? backstop : std::min(timeout, backstop);
    }
    ::poll(fds, nfds, timeout);
    if (sigchld_fd >= 0) SigchldSelfPipe::drain();
  }

  if (tls_branch_) tls_branch_->current_pid.store(0);
  untrack_pid(pid);
  close_fd(&stdin_write);
  close_fd(&stdout_read);
  close_fd(&stderr_read);
  // Make sure nothing of the session survives a kill.  Group kill only: the
  // child is already reaped here, so a pid fallback could hit a recycled
  // pid; the session id itself is never recycled while members remain.
  if (phase != KillPhase::kNone) ::kill(-pid, SIGKILL);

  Status status;
  if (killed_for_deadline) {
    status = Status::timeout("command '" + invocation.argv[0] +
                             "' exceeded its deadline");
  } else if (killed_for_abort) {
    status = Status::killed("forall branch aborted");
  } else if (WIFEXITED(exit_status)) {
    const int code = WEXITSTATUS(exit_status);
    if (code == 0) {
      status = Status::success();
    } else if (code == 127) {
      status = Status::not_found("cannot execute " + invocation.argv[0]);
    } else {
      status = Status::failure(strprintf("%s: exit status %d",
                                         invocation.argv[0].c_str(), code));
    }
  } else if (WIFSIGNALED(exit_status)) {
    status = Status::failure(strprintf("%s: killed by signal %d",
                                       invocation.argv[0].c_str(),
                                       WTERMSIG(exit_status)));
  } else {
    status = Status::failure("unknown wait status");
  }

  if (observers_) {
    const TimePoint reaped = clock_.now();
    if (phase != KillPhase::kNone) {
      // Kill latency: forcible-termination request to actual reap.
      obs::ObsEvent event;
      event.kind = obs::ObsEvent::Kind::kKill;
      event.time = reaped;
      event.span = process_span.id;
      static const obs::SiteId kAbortSite = obs::intern_site("posix.abort");
      static const obs::SiteId kDeadlineSite =
          obs::intern_site("posix.deadline");
      event.site = killed_for_abort ? kAbortSite : kDeadlineSite;
      event.detail = invocation.argv[0];
      event.value = to_seconds(reaped - term_time);
      observers_->on_event(event);
    }
    process_span.end = reaped;
    process_span.status = status;
    observers_->end_span(process_span);
  }

  return shell::CommandResult{std::move(status), std::move(out),
                              std::move(err)};
}

std::vector<Status> PosixExecutor::run_parallel(
    std::vector<std::function<Status()>> branches) {
  const std::size_t n = branches.size();
  shell::ParallelPolicy policy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = parallel_policy_;
  }
  ParallelGroup group;
  for (std::size_t i = 0; i < n; ++i) {
    group.branches.push_back(std::make_unique<BranchState>());
  }
  std::vector<Status> statuses(n, Status::killed("forall branch aborted"));

  // Bounded worker pool: at most max_concurrent branches in flight; each
  // worker additionally takes an executor-wide process-table slot, backing
  // off (jittered) while the table is full -- the paper's deferred
  // Ethernet-like governor for process creation.
  const std::size_t workers =
      policy.max_concurrent > 0
          ? std::min<std::size_t>(n, std::size_t(policy.max_concurrent))
          : n;
  std::atomic<std::size_t> cursor{0};
  const bool table_limited = policy.process_table_slots > 0;

  auto take_table_slot = [&]() -> bool {
    Rng rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
    core::Backoff backoff(policy.backoff, rng);
    while (!group.abort.load()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (table_free_ > 0) {
          --table_free_;
          return true;
        }
      }
      // Jittered carrier-sense backoff, but woken early by a group abort.
      Duration delay =
          std::min<Duration>(backoff.next(), options_.poll_interval * 10);
      if (observers_) {
        static const obs::SiteId kTableSite =
            obs::intern_site("forall.table");
        char detail[32];
        std::snprintf(detail, sizeof(detail), "slots=%lld",
                      (long long)policy.process_table_slots);
        obs::ObsEvent event;
        event.kind = obs::ObsEvent::Kind::kTableFull;
        event.time = clock_.now();
        event.site = kTableSite;
        event.detail = detail;
        observers_->on_event(event);
        event.kind = obs::ObsEvent::Kind::kBackoff;
        event.value = to_seconds(delay);
        observers_->on_event(event);
      }
      std::unique_lock<std::mutex> lock(group.m);
      group.cv.wait_for(lock, delay, [&] { return group.abort.load(); });
    }
    return false;
  };
  auto return_table_slot = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    ++table_free_;
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      ParallelGroup* previous_group = tls_group_;
      BranchState* previous_branch = tls_branch_;
      tls_group_ = &group;
      while (true) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= n) break;
        if (group.abort.load()) continue;  // drain remaining as aborted
        if (table_limited && !take_table_slot()) continue;
        tls_branch_ = group.branches[i].get();
        statuses[i] = branches[i]();
        tls_branch_ = nullptr;
        if (table_limited) return_table_slot();
        if (statuses[i].failed()) {
          group.signal_abort();  // wakes sibling poll loops and sleeps
        }
      }
      tls_group_ = previous_group;
      tls_branch_ = previous_branch;
    });
  }
  for (std::thread& t : threads) t.join();
  return statuses;
}

}  // namespace ethergrid::posix
