#include "posix/posix_executor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "util/strings.hpp"

namespace ethergrid::posix {

thread_local PosixExecutor::ParallelGroup* PosixExecutor::tls_group_ = nullptr;
thread_local PosixExecutor::BranchState* PosixExecutor::tls_branch_ = nullptr;

namespace {

// Writing to a dead child's stdin must be an EPIPE error, not process death.
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)done;
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

PosixExecutor::PosixExecutor(PosixExecutorOptions options)
    : options_(options) {
  ignore_sigpipe_once();
}

PosixExecutor::~PosixExecutor() = default;

TimePoint PosixExecutor::now() { return clock_.now(); }

void PosixExecutor::sleep(Duration d) {
  // Chunked so an aborting forall does not sit out a long backoff delay.
  TimePoint end = clock_.now() + d;
  while (clock_.now() < end) {
    if (tls_group_ && tls_group_->abort.load()) return;
    Duration chunk = std::min(options_.poll_interval, end - clock_.now());
    clock_.sleep(chunk);
  }
}

Status PosixExecutor::with_deadline(TimePoint deadline,
                                    const std::function<Status()>& fn) {
  return clock_.with_deadline(deadline, fn);
}

bool PosixExecutor::file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

void PosixExecutor::track_pid(long pid) {
  std::lock_guard<std::mutex> lock(mu_);
  live_pids_.push_back(pid);
}

void PosixExecutor::untrack_pid(long pid) {
  std::lock_guard<std::mutex> lock(mu_);
  live_pids_.erase(std::remove(live_pids_.begin(), live_pids_.end(), pid),
                   live_pids_.end());
}

void PosixExecutor::set_parallel_policy(const shell::ParallelPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  parallel_policy_ = policy;
  table_free_ = policy.process_table_slots;
}

void PosixExecutor::terminate_all(int signo) {
  std::lock_guard<std::mutex> lock(mu_);
  for (long pid : live_pids_) {
    ::kill(static_cast<pid_t>(-pid), signo);  // whole session
  }
}

shell::CommandResult PosixExecutor::run(
    const shell::CommandInvocation& invocation) {
  using shell::CommandResult;

  if (tls_group_ && tls_group_->abort.load()) {
    return CommandResult{Status::killed("forall branch aborted"), "", ""};
  }

  // ---- set up I/O endpoints in the parent (better error reporting) ----
  int stdin_read = -1, stdin_write = -1;
  int stdout_read = -1, stdout_write = -1;
  int stderr_read = -1, stderr_write = -1;

  auto fail_setup = [&](const std::string& message) {
    close_fd(&stdin_read);
    close_fd(&stdin_write);
    close_fd(&stdout_read);
    close_fd(&stdout_write);
    close_fd(&stderr_read);
    close_fd(&stderr_write);
    return CommandResult{Status::io_error(message), "", ""};
  };

  if (invocation.stdin_data) {
    int fds[2];
    if (pipe(fds) != 0) return fail_setup("pipe: " + std::string(strerror(errno)));
    stdin_read = fds[0];
    stdin_write = fds[1];
  } else if (invocation.stdin_file) {
    stdin_read = ::open(invocation.stdin_file->c_str(), O_RDONLY);
    if (stdin_read < 0) {
      return fail_setup("cannot open " + *invocation.stdin_file + ": " +
                        strerror(errno));
    }
  } else {
    stdin_read = ::open("/dev/null", O_RDONLY);
  }

  if (invocation.stdout_file) {
    int flags = O_WRONLY | O_CREAT |
                (invocation.stdout_append ? O_APPEND : O_TRUNC);
    stdout_write = ::open(invocation.stdout_file->c_str(), flags, 0644);
    if (stdout_write < 0) {
      return fail_setup("cannot open " + *invocation.stdout_file + ": " +
                        strerror(errno));
    }
  } else {
    int fds[2];
    if (pipe(fds) != 0) return fail_setup("pipe: " + std::string(strerror(errno)));
    stdout_read = fds[0];
    stdout_write = fds[1];
  }

  if (!invocation.merge_stderr) {
    int fds[2];
    if (pipe(fds) != 0) return fail_setup("pipe: " + std::string(strerror(errno)));
    stderr_read = fds[0];
    stderr_write = fds[1];
  }

  // ---- fork/exec in a fresh session ----
  std::vector<char*> argv;
  argv.reserve(invocation.argv.size() + 1);
  for (const std::string& arg : invocation.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return fail_setup("fork: " + std::string(strerror(errno)));
  if (pid == 0) {
    // Child: own session so kill(-pid) reaches every descendant.
    ::setsid();
    ::dup2(stdin_read, 0);
    ::dup2(stdout_write, 1);
    ::dup2(invocation.merge_stderr ? stdout_write : stderr_write, 2);
    for (int fd : {stdin_read, stdin_write, stdout_read, stdout_write,
                   stderr_read, stderr_write}) {
      if (fd > 2) ::close(fd);
    }
    ::execvp(argv[0], argv.data());
    _exit(127);  // shell convention: command not runnable
  }

  track_pid(pid);
  if (tls_branch_) tls_branch_->current_pid.store(pid);

  // Parent keeps only its pipe ends, nonblocking.
  close_fd(&stdin_read);
  close_fd(&stdout_write);
  close_fd(&stderr_write);
  if (stdin_write >= 0) set_nonblocking(stdin_write);
  if (stdout_read >= 0) set_nonblocking(stdout_read);
  if (stderr_read >= 0) set_nonblocking(stderr_read);

  std::string out, err;
  std::size_t stdin_sent = 0;
  const std::string stdin_data = invocation.stdin_data.value_or("");
  if (stdin_write >= 0 && stdin_data.empty()) close_fd(&stdin_write);

  enum class KillPhase { kNone, kTermSent, kKillSent };
  KillPhase phase = KillPhase::kNone;
  TimePoint term_time{};
  bool killed_for_deadline = false;
  bool killed_for_abort = false;

  int exit_status = 0;
  bool exited = false;

  auto pump = [&](int fd, std::string* sink) {
    char buf[4096];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        sink->append(buf, std::size_t(n));
        continue;
      }
      return n == 0;  // true => EOF
    }
  };

  while (true) {
    // Feed stdin.
    if (stdin_write >= 0) {
      while (stdin_sent < stdin_data.size()) {
        ssize_t n = ::write(stdin_write, stdin_data.data() + stdin_sent,
                            stdin_data.size() - stdin_sent);
        if (n > 0) {
          stdin_sent += std::size_t(n);
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else {
          stdin_sent = stdin_data.size();  // EPIPE etc: stop feeding
        }
      }
      if (stdin_sent >= stdin_data.size()) close_fd(&stdin_write);
    }

    // Drain output.
    if (stdout_read >= 0 && pump(stdout_read, &out)) close_fd(&stdout_read);
    if (stderr_read >= 0 && pump(stderr_read, &err)) close_fd(&stderr_read);

    // Reap?
    if (!exited) {
      int status = 0;
      pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        exited = true;
        exit_status = status;
      }
    }
    if (exited && stdout_read < 0 && stderr_read < 0) break;
    if (exited && phase != KillPhase::kNone) {
      // Killed: do not wait for grandchildren holding the pipes open.
      if (stdout_read >= 0) pump(stdout_read, &out);
      if (stderr_read >= 0) pump(stderr_read, &err);
      break;
    }

    // Deadline / abort enforcement on the whole session.
    const bool want_abort = tls_group_ && tls_group_->abort.load();
    const bool past_deadline = clock_.now() >= invocation.deadline;
    if (!exited && phase == KillPhase::kNone && (want_abort || past_deadline)) {
      killed_for_abort = want_abort;
      killed_for_deadline = past_deadline && !want_abort;
      ::kill(-pid, SIGTERM);
      phase = KillPhase::kTermSent;
      term_time = clock_.now();
    } else if (!exited && phase == KillPhase::kTermSent &&
               clock_.now() - term_time >= options_.kill_grace) {
      ::kill(-pid, SIGKILL);
      phase = KillPhase::kKillSent;
    }

    // Sleep on whatever is still open.
    struct pollfd fds[3];
    nfds_t nfds = 0;
    if (stdin_write >= 0) fds[nfds++] = {stdin_write, POLLOUT, 0};
    if (stdout_read >= 0) fds[nfds++] = {stdout_read, POLLIN, 0};
    if (stderr_read >= 0) fds[nfds++] = {stderr_read, POLLIN, 0};
    const int timeout_ms =
        int(std::max<std::int64_t>(1, options_.poll_interval.count() / 1000));
    if (nfds > 0) {
      ::poll(fds, nfds, timeout_ms);
    } else if (!exited) {
      std::this_thread::sleep_for(options_.poll_interval);
    }
  }

  if (tls_branch_) tls_branch_->current_pid.store(0);
  untrack_pid(pid);
  close_fd(&stdin_write);
  close_fd(&stdout_read);
  close_fd(&stderr_read);
  // Make sure nothing of the session survives a kill.
  if (phase != KillPhase::kNone) ::kill(-pid, SIGKILL);

  Status status;
  if (killed_for_deadline) {
    status = Status::timeout("command '" + invocation.argv[0] +
                             "' exceeded its deadline");
  } else if (killed_for_abort) {
    status = Status::killed("forall branch aborted");
  } else if (WIFEXITED(exit_status)) {
    const int code = WEXITSTATUS(exit_status);
    if (code == 0) {
      status = Status::success();
    } else if (code == 127) {
      status = Status::not_found("cannot execute " + invocation.argv[0]);
    } else {
      status = Status::failure(strprintf("%s: exit status %d",
                                         invocation.argv[0].c_str(), code));
    }
  } else if (WIFSIGNALED(exit_status)) {
    status = Status::failure(strprintf("%s: killed by signal %d",
                                       invocation.argv[0].c_str(),
                                       WTERMSIG(exit_status)));
  } else {
    status = Status::failure("unknown wait status");
  }

  return shell::CommandResult{std::move(status), std::move(out),
                              std::move(err)};
}

std::vector<Status> PosixExecutor::run_parallel(
    std::vector<std::function<Status()>> branches) {
  const std::size_t n = branches.size();
  shell::ParallelPolicy policy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = parallel_policy_;
  }
  ParallelGroup group;
  for (std::size_t i = 0; i < n; ++i) {
    group.branches.push_back(std::make_unique<BranchState>());
  }
  std::vector<Status> statuses(n, Status::killed("forall branch aborted"));

  // Bounded worker pool: at most max_concurrent branches in flight; each
  // worker additionally takes an executor-wide process-table slot, backing
  // off (jittered) while the table is full -- the paper's deferred
  // Ethernet-like governor for process creation.
  const std::size_t workers =
      policy.max_concurrent > 0
          ? std::min<std::size_t>(n, std::size_t(policy.max_concurrent))
          : n;
  std::atomic<std::size_t> cursor{0};
  const bool table_limited = policy.process_table_slots > 0;

  auto take_table_slot = [&]() -> bool {
    Rng rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
    core::Backoff backoff(policy.backoff, rng);
    while (!group.abort.load()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (table_free_ > 0) {
          --table_free_;
          return true;
        }
      }
      Duration delay =
          std::min<Duration>(backoff.next(), options_.poll_interval * 10);
      std::this_thread::sleep_for(delay);
    }
    return false;
  };
  auto return_table_slot = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    ++table_free_;
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      ParallelGroup* previous_group = tls_group_;
      BranchState* previous_branch = tls_branch_;
      tls_group_ = &group;
      while (true) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= n) break;
        if (group.abort.load()) continue;  // drain remaining as aborted
        if (table_limited && !take_table_slot()) continue;
        tls_branch_ = group.branches[i].get();
        statuses[i] = branches[i]();
        tls_branch_ = nullptr;
        if (table_limited) return_table_slot();
        if (statuses[i].failed()) {
          group.abort.store(true);  // siblings' run() loops enforce the kill
        }
      }
      tls_group_ = previous_group;
      tls_branch_ = previous_branch;
    });
  }
  for (std::thread& t : threads) t.join();
  return statuses;
}

}  // namespace ethergrid::posix
