// Test-only syscall indirection for the POSIX executor.
//
// Child-process supervision is riddled with error paths that ordinary tests
// can never reach: pipe(2) out of descriptors, fork(2) hitting RLIMIT_NPROC,
// dup2(2) interrupted, short reads and EINTR storms on the stdin feed.  The
// chaos harness reaches them by routing every such call through a small
// table of function pointers that a test may repoint at a failing or
// interrupting double.
//
// Design constraints:
//  * Zero-cost default: each entry starts out pointing at the real libc
//    call; production code never branches on "is a shim installed".
//  * Fork-safe / async-signal-safe: the table holds plain function
//    pointers (no std::function, no locks).  The child between fork() and
//    exec() only *reads* pointers, which is safe.  Tests must install
//    hooks while no command is in flight -- the shim is a test aid, not a
//    concurrency feature.
//  * The x*() wrappers layered on top add the EINTR discipline the raw
//    calls lack: retry the call when it is interrupted before any side
//    effect occurred.  They are what posix_executor.cpp actually calls.
#pragma once

#include <sys/types.h>

#include <cstddef>

namespace ethergrid::posix {

// The hookable syscall table.  Signatures mirror libc exactly.
struct SyscallHooks {
  int (*pipe2)(int fds[2], int flags);
  pid_t (*fork)();
  int (*dup2)(int oldfd, int newfd);
  ssize_t (*read)(int fd, void* buf, size_t count);
  ssize_t (*write)(int fd, const void* buf, size_t count);
  pid_t (*waitpid)(pid_t pid, int* status, int options);
};

// Returns the live table.  Mutating its entries swaps the implementation
// used by every subsequent x*() call in this process.
SyscallHooks& syscall_hooks();

// Restores every entry to the real libc call.  Tests pair an install with
// this in a scope guard so a failing assertion cannot poison later tests.
void reset_syscall_hooks();

// RAII: swap the whole table in, restore the previous table on destruction.
class ScopedSyscallHooks {
 public:
  explicit ScopedSyscallHooks(const SyscallHooks& hooks);
  ~ScopedSyscallHooks();
  ScopedSyscallHooks(const ScopedSyscallHooks&) = delete;
  ScopedSyscallHooks& operator=(const ScopedSyscallHooks&) = delete;

 private:
  SyscallHooks previous_;
};

// ---- EINTR-hardened wrappers over the hook table -------------------------
//
// Each retries while the underlying call fails with EINTR (where retrying
// is correct: the call had no side effect yet).  Everything else passes
// through, errno intact.

int xpipe2(int fds[2], int flags);
pid_t xfork();
int xdup2(int oldfd, int newfd);
ssize_t xread(int fd, void* buf, size_t count);
ssize_t xwrite(int fd, const void* buf, size_t count);
// waitpid with WNOHANG never blocks, but can still be interrupted when
// blocking; retried either way.
pid_t xwaitpid(pid_t pid, int* status, int options);

}  // namespace ethergrid::posix
