// gridsim: explore the paper's three scenarios from the command line.
//
// Usage:
//   gridsim submit  [--clients N] [--discipline D] [--minutes M]
//                   [--threshold FDS] [--seed S] [--faults SPEC] [--timeline]
//   gridsim buffer  [--producers N] [--discipline D] [--seconds S]
//                   [--capacity-mb MB] [--seed S] [--faults SPEC]
//   gridsim readers [--discipline D] [--readers N] [--seconds S]
//                   [--flaky P] [--seed S] [--faults SPEC]
//   gridsim bulk    [--senders N] [--discipline D] [--seconds S]
//                   [--link-mbps M] [--file-mb MB] [--seed S] [--faults SPEC]
//
// Every mode also accepts [--trace-out FILE]: write a Perfetto/Chrome
// trace-event JSON of the run's back-channel events (collisions,
// carrier-sense probes, table-full deferrals, crashes, injected faults).
//
// D names any registered discipline (grid::DisciplineRegistry) -- built in:
// fixed | aloha | ethernet | reservation.  Disciplines that negotiate
// reservations only make sense over the fluid link of the `bulk` mode;
// the binary-collision scenarios (submit/buffer/readers) reject them.
// Every run is deterministic in the seed; change --seed to see another
// realization.
//
// SPEC is a semicolon-separated fault plan, e.g.
//   --faults 'fileserver.*.fetch:reset@0.2;schedd.submit:stall@0.1,5'
// (see sim/fault_plan.hpp for the grammar; times are plain seconds).  Same
// seed + same plan replays the identical fault sequence; the run ends by
// printing the fault audit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "grid/discipline_registry.hpp"
#include "obs/trace.hpp"

using namespace ethergrid;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : std::atoll(it->second.c_str());
  }
  double get_double(const std::string& name, double fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  bool has(const std::string& name) const { return values.count(name) > 0; }
};

bool parse_flags(int argc, char** argv, int start, Flags* flags) {
  for (int i = start; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "gridsim: unexpected argument '%s'\n", arg);
      return false;
    }
    std::string name = arg + 2;
    if (name == "timeline") {
      flags->values[name] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "gridsim: --%s needs a value\n", name.c_str());
      return false;
    }
    flags->values[name] = argv[++i];
  }
  return true;
}

// Parses --faults into *plan; returns false (with a message) on bad specs.
bool parse_fault_flag(const Flags& flags, sim::FaultPlan* plan) {
  if (!flags.has("faults")) return true;
  Status status = sim::FaultPlan::parse(flags.get("faults", ""), plan);
  if (status.failed()) {
    std::fprintf(stderr, "gridsim: --faults: %s\n",
                 status.message().c_str());
    return false;
  }
  return true;
}

// Optional --trace-out wiring: a TraceRecorder composed into an ObserverSet
// the scenario hands down to the grid substrates (carrier-sense probes,
// collisions, table-full deferrals, crashes, injected faults).
struct Tracing {
  obs::TraceRecorder recorder{"gridsim"};
  obs::ObserverSet set;
  std::string path;

  explicit Tracing(const Flags& flags) : path(flags.get("trace-out", "")) {
    set.add(&recorder);
  }
  obs::ObserverSet* observers() { return path.empty() ? nullptr : &set; }
  // Returns a nonzero exit code if writing the trace failed.
  int finish() const {
    if (path.empty()) return 0;
    Status status = recorder.write_file(path);
    if (status.failed()) {
      std::fprintf(stderr, "gridsim: --trace-out: %s\n",
                   status.to_string().c_str());
      return 2;
    }
    std::printf("trace: %zu event(s) written to %s\n",
                recorder.event_count(), path.c_str());
    return 0;
  }
};

void print_fault_audit(std::int64_t fired, const std::string& audit) {
  if (fired == 0) return;
  std::printf("\nfault audit (%lld fired):\n%s", (long long)fired,
              audit.c_str());
}

// Resolves --discipline through the registry (so a discipline registered at
// startup is immediately usable) instead of the old hard-coded enum switch.
// The binary-collision modes pass fluid=false: their clients work the
// resource directly and cannot express grant negotiation, so a
// reservation-flagged discipline is a flag error there, not an abort in
// the client factory.
bool parse_discipline(const Flags& flags, std::string* name,
                      bool fluid = false) {
  *name = flags.get("discipline", "ethernet");
  const grid::DisciplineTraits* traits = grid::find_discipline(*name);
  if (traits == nullptr) {
    std::fprintf(stderr, "gridsim: unknown discipline '%s' (registered: %s)\n",
                 name->c_str(), grid::discipline_names_csv().c_str());
    return false;
  }
  if (traits->reservation && !fluid) {
    std::fprintf(stderr,
                 "gridsim: discipline '%s' negotiates bandwidth reservations "
                 "and only applies to the fluid `bulk` mode\n",
                 name->c_str());
    return false;
  }
  return true;
}

int run_submit(const Flags& flags) {
  std::string discipline;
  if (!parse_discipline(flags, &discipline)) return 2;
  const int clients = int(flags.get_int("clients", 400));
  const int minutes_total = int(flags.get_int("minutes", 5));
  exp::SubmitScenarioConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.submitter.fd_threshold = flags.get_int("threshold", 1000);
  if (!parse_fault_flag(flags, &config.faults)) return 2;
  Tracing tracing(flags);
  config.observers = tracing.observers();

  if (flags.has("timeline")) {
    auto timeline = exp::run_submitter_timeline(
        config, discipline, clients, ethergrid::minutes(minutes_total),
        sec(10));
    exp::Table table("Submitter timeline", {"t_seconds", "available_fds",
                                            "jobs_submitted"});
    for (const auto& p : timeline.points) {
      table.add_row({exp::Table::cell(p.t_seconds),
                     exp::Table::cell(p.available_fds),
                     exp::Table::cell(p.jobs_submitted)});
    }
    table.print();
    std::printf("\njobs=%lld crashes=%d\n", (long long)timeline.jobs_total,
                timeline.schedd_crashes);
    print_fault_audit(timeline.faults_injected, timeline.fault_audit);
    return tracing.finish();
  }

  auto point = exp::run_submit_scale_point(config, discipline, clients,
                                           ethergrid::minutes(minutes_total));
  std::printf(
      "%d %s submitters, %d min: jobs=%lld crashes=%d fd_low_watermark=%lld\n",
      clients, discipline.c_str(), minutes_total,
      (long long)point.jobs_submitted, point.schedd_crashes,
      (long long)point.fd_low_watermark);
  print_fault_audit(point.faults_injected, point.fault_audit);
  return tracing.finish();
}

int run_buffer(const Flags& flags) {
  std::string discipline;
  if (!parse_discipline(flags, &discipline)) return 2;
  const int producers = int(flags.get_int("producers", 20));
  const int seconds = int(flags.get_int("seconds", 600));
  exp::BufferScenarioConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.buffer_bytes = flags.get_int("capacity-mb", 120) << 20;
  if (!parse_fault_flag(flags, &config.faults)) return 2;
  Tracing tracing(flags);
  config.observers = tracing.observers();

  auto point = exp::run_buffer_point(config, discipline, producers,
                                     sec(seconds));
  std::printf(
      "%d %s producers, %d s, %lld MB buffer:\n"
      "  consumed=%lld files (%.1f MB)  completed=%lld  collisions=%lld  "
      "deferrals=%lld\n",
      producers, discipline.c_str(), seconds,
      (long long)(config.buffer_bytes >> 20),
      (long long)point.files_consumed,
      double(point.bytes_consumed) / (1 << 20),
      (long long)point.files_completed, (long long)point.collisions,
      (long long)point.deferrals);
  print_fault_audit(point.faults_injected, point.fault_audit);
  return tracing.finish();
}

int run_readers(const Flags& flags) {
  std::string discipline;
  if (!parse_discipline(flags, &discipline)) return 2;
  const int seconds = int(flags.get_int("seconds", 900));
  exp::ReaderScenarioConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.readers = int(flags.get_int("readers", 3));
  config.servers = exp::ReaderScenarioConfig::paper_farm();
  const double flaky = flags.get_double("flaky", 0.0);
  for (auto& server : config.servers) {
    if (!server.black_hole) server.transient_failure_rate = flaky;
  }
  if (!parse_fault_flag(flags, &config.faults)) return 2;
  Tracing tracing(flags);
  config.observers = tracing.observers();

  auto timeline = exp::run_reader_timeline(config, discipline, sec(seconds),
                                           sec(30));
  std::printf(
      "%d %s readers, %d s (1 black hole, flaky=%.2f):\n"
      "  transfers=%lld  60s-stalls=%lld  deferrals=%lld\n",
      config.readers, discipline.c_str(), seconds, flaky,
      (long long)timeline.transfers_total,
      (long long)timeline.collisions_total,
      (long long)timeline.deferrals_total);
  print_fault_audit(timeline.faults_injected, timeline.fault_audit);
  return tracing.finish();
}

// N senders share one fluid link; this is the mode where `reservation`
// actually negotiates grants (the other modes run on binary media).
int run_bulk(const Flags& flags) {
  std::string discipline;
  if (!parse_discipline(flags, &discipline, /*fluid=*/true)) return 2;
  const int senders = int(flags.get_int("senders", 8));
  const int seconds = int(flags.get_int("seconds", 600));
  exp::BulkScenarioConfig config;
  config.seed = std::uint64_t(flags.get_int("seed", 42));
  config.link_bps = flags.get_double("link-mbps", 10.0) * 1024 * 1024;
  config.sender.file_bytes = flags.get_int("file-mb", 32) << 20;
  if (!parse_fault_flag(flags, &config.faults)) return 2;
  Tracing tracing(flags);
  config.observers = tracing.observers();

  auto point = exp::run_bulk_point(config, discipline, senders, sec(seconds));
  std::printf(
      "%d %s senders, %d s, %.1f MiB/s link, %lld MB files:\n"
      "  files=%lld (%.1f MB)  goodput=%.2f MB/s  jain=%.4f\n"
      "  collisions=%lld  deferrals=%lld  timeouts=%lld",
      senders, discipline.c_str(), seconds,
      config.link_bps / (1024.0 * 1024.0),
      (long long)(config.sender.file_bytes >> 20), (long long)point.files_sent,
      double(point.bytes_sent) / (1 << 20), point.goodput_bps / 1e6,
      point.jain_fairness, (long long)point.collisions,
      (long long)point.deferrals, (long long)point.attempt_timeouts);
  if (point.grants || point.rejects) {
    std::printf("  grants=%lld  rejects=%lld", (long long)point.grants,
                (long long)point.rejects);
  }
  std::printf("\n");
  print_fault_audit(point.faults_injected, point.fault_audit);
  return tracing.finish();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: gridsim submit|buffer|readers|bulk [--flag value ...]\n"
      "  submit:  --clients N --discipline D --minutes M --threshold FDS\n"
      "           --seed S --faults SPEC --timeline\n"
      "  buffer:  --producers N --discipline D --seconds S --capacity-mb MB\n"
      "           --seed S --faults SPEC\n"
      "  readers: --readers N --discipline D --seconds S --flaky P --seed S\n"
      "           --faults SPEC\n"
      "  bulk:    --senders N --discipline D --seconds S --link-mbps M\n"
      "           --file-mb MB --seed S --faults SPEC\n"
      "disciplines: %s\n"
      "all modes accept --trace-out FILE (Perfetto/Chrome trace-event JSON\n"
      "of collisions, carrier-sense probes, deferrals, crashes, faults)\n"
      "SPEC: 'site:kind@args;...', e.g.\n"
      "  'fileserver.*.fetch:reset@0.2;schedd.submit:crash@120'\n"
      "kinds: fail@P  stall@P,SECS  reset@P[,F1-F2]  crash@T  drop@T1-T2\n"
      "(times in plain seconds)\n",
      grid::discipline_names_csv().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Flags flags;
  if (!parse_flags(argc, argv, 2, &flags)) return 2;
  const std::string mode = argv[1];
  if (mode == "submit") return run_submit(flags);
  if (mode == "buffer") return run_buffer(flags);
  if (mode == "readers") return run_readers(flags);
  if (mode == "bulk") return run_bulk(flags);
  return usage();
}
