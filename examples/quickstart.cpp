// Quickstart: the paper's headline example, both ways.
//
//   try for 1 hour
//     forany host in xxx yyy zzz
//       try for 5 minutes
//         fetch-file $host filename
//       end
//     end
//   end
//
// First as an ftsh script over the simulated executor (virtual time: the
// whole hour-long ordeal runs in milliseconds), then the same logic through
// the C++ core API (run_try + forany-style loop).
#include <cstdio>

#include "core/retry.hpp"
#include "core/sim_clock.hpp"
#include "shell/session.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

namespace {

// A fetch-file that models two flaky mirrors and one good-but-slow one.
shell::SimExecutor::Handler make_fetch_file() {
  return [](sim::Context& ctx,
            const shell::CommandInvocation& inv) -> shell::CommandResult {
    const std::string& host = inv.argv.at(1);
    if (host == "xxx") {
      ctx.sleep(sec(30));  // connects, then wedges past the 5-minute limit
      ctx.sleep(minutes(10));
      return {Status::success(), "", ""};
    }
    if (host == "yyy") {
      ctx.sleep(sec(2));
      return {Status::io_error("connection reset by peer"), "", ""};
    }
    ctx.sleep(sec(12));  // zzz: slow but works
    return {Status::success(), "fetched filename from zzz\n", ""};
  };
}

}  // namespace

int main() {
  std::printf("--- ftsh over the simulator ---\n");
  sim::Kernel kernel(7);
  shell::SimExecutor executor(kernel);
  executor.register_command("fetch-file", make_fetch_file());

  const char* script = R"(
try for 1 hour
  forany host in xxx yyy zzz
    try for 5 minutes
      fetch-file ${host} filename
    end
  end
end
echo winner: ${host}
)";

  // A Session bundles executor + interpreter + observers; collect_metrics
  // gives the back-channel counters for free.
  shell::SessionOptions session_options;
  session_options.collect_metrics = true;
  shell::Session session(executor, session_options);
  kernel.spawn("script", [&](sim::Context& ctx) {
    shell::SimExecutor::ContextBinding binding(executor, ctx);
    Status status = session.run_source(script);
    std::printf("script result: %s\n", status.to_string().c_str());
    std::printf("%s", session.output().c_str());
    std::printf("virtual time elapsed: %.1f s\n", to_seconds(ctx.now()));
    std::printf("try attempts observed: %.0f\n",
                session.metrics()->counter("spans.attempt"));
  });
  kernel.run();

  std::printf("\n--- the same discipline through the C++ API ---\n");
  sim::Kernel kernel2(7);
  kernel2.spawn("client", [&](sim::Context& ctx) {
    core::SimClock clock(ctx);
    Rng rng = ctx.rng();
    const char* hosts[] = {"xxx", "yyy", "zzz"};
    core::TryMetrics metrics;
    core::TryOptions outer = core::TryOptions::for_time(hours(1));
    outer.metrics = &metrics;
    Status status =
        core::run_try(clock, rng, outer, [&](TimePoint) -> Status {
          for (const char* host : hosts) {  // forany
            Status attempt = core::run_try(
                clock, rng, core::TryOptions::for_time(minutes(5)),
                [&](TimePoint) -> Status {
                  // Pretend transfer: xxx wedges, yyy flakes, zzz works.
                  if (std::string(host) == "xxx") ctx.sleep(hours(2));
                  if (std::string(host) == "yyy") {
                    ctx.sleep(sec(2));
                    return Status::io_error("reset");
                  }
                  ctx.sleep(sec(12));
                  return Status::success();
                });
            if (attempt.ok()) {
              std::printf("fetched from %s\n", host);
              return Status::success();
            }
          }
          return Status::failure("all mirrors failed");
        });
    std::printf("result: %s after %d attempt(s), %.1f s virtual\n",
                status.to_string().c_str(), metrics.attempts,
                to_seconds(ctx.now()));
  });
  kernel2.run();
  return 0;
}
