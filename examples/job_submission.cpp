// Job submission: the paper's Ethernet submitter script, verbatim, driving
// the simulated Condor schedd.
//
// The script from section 5 (with our read-file-nr standing in for
// `cut -f2 /proc/sys/fs/file-nr`):
//
//   try for 5 minutes
//     read-file-nr -> n
//     if ${n} .lt. 1000
//       failure
//     else
//       condor_submit submit.job
//     end
//   end
//
// Twenty such scripted clients run against a deliberately small descriptor
// table, alongside an external descriptor hog that comes and goes; watch
// the clients defer while the hog squats and resume when it leaves.
#include <cstdio>

#include "grid/schedd.hpp"
#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

int main() {
  sim::Kernel kernel(11);

  grid::ScheddConfig schedd_config;
  schedd_config.fd_capacity = 2000;
  schedd_config.fds_per_connection = 20;
  schedd_config.fds_per_connection_jitter = 2;
  grid::Schedd schedd(kernel, schedd_config);

  shell::SimExecutor executor(kernel);
  executor.register_command(
      "read-file-nr",
      [&schedd](sim::Context& ctx,
                const shell::CommandInvocation&) -> shell::CommandResult {
        ctx.sleep(msec(10));
        return {Status::success(),
                std::to_string(schedd.fd_table().available()), ""};
      });
  executor.register_command(
      "condor_submit",
      [&schedd](sim::Context& ctx,
                const shell::CommandInvocation&) -> shell::CommandResult {
        Status s = schedd.submit(ctx);
        return {s, s.ok() ? "1 job(s) submitted to queue\n" : "", ""};
      });

  const char* ethernet_submitter = R"(
submitted=0
while ${submitted} .lt. 5
  try for 5 minutes
    read-file-nr -> n
    if ${n} .lt. 1000
      failure
    else
      condor_submit submit.job
    end
  end
  submitted = ${submitted} .add. 1
end
)";

  int finished = 0;
  for (int i = 0; i < 20; ++i) {
    kernel.spawn("submitter" + std::to_string(i), [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::Interpreter interpreter(executor);
      shell::Environment env;
      Status s = interpreter.run_source(ethernet_submitter, env);
      if (s.ok()) ++finished;
    });
  }

  // A descriptor hog squats on most of the table between t=60 and t=180.
  kernel.spawn("hog", [&](sim::Context& ctx) {
    ctx.sleep(sec(60));
    grid::FdLease hog(schedd.fd_table(), 1500);
    std::printf("[%6.1f s] hog pinned 1500 descriptors (free: %lld)\n",
                to_seconds(ctx.now()),
                (long long)schedd.fd_table().available());
    ctx.sleep(sec(120));
    hog.release();
    std::printf("[%6.1f s] hog released (free: %lld)\n",
                to_seconds(ctx.now()),
                (long long)schedd.fd_table().available());
  });

  // Progress sampler.
  kernel.spawn("sampler", [&](sim::Context& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.sleep(sec(60));
      std::printf("[%6.1f s] jobs=%lld free_fds=%lld crashes=%d\n",
                  to_seconds(ctx.now()), (long long)schedd.jobs_submitted(),
                  (long long)schedd.fd_table().available(), schedd.crashes());
    }
  });

  kernel.run_until(kEpoch + minutes(12));
  std::printf(
      "\n%d of 20 scripted submitters finished their 5 jobs; %lld jobs "
      "queued total; %d schedd crash(es).\n",
      finished, (long long)schedd.jobs_submitted(), schedd.crashes());
  kernel.shutdown();
  return 0;
}
