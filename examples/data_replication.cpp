// Data replication: the black-hole scenario via the paper's two scripts.
//
// The Aloha reader:                     The Ethernet reader:
//   try for 900 seconds                   try for 900 seconds
//     forany host in xxx yyy zzz            forany host in xxx yyy zzz
//       try for 60 seconds                    try for 5 seconds
//         wget http://$host/data                wget http://$host/flag
//       end                                   end
//     end                                     try for 60 seconds
//   end                                         wget http://$host/data
//                                             end
//                                           end
//                                         end
//
// Both run against three single-threaded replicas, one of which is a black
// hole; the transcript shows the Aloha script paying 60-second stalls that
// the flag-file probe avoids.
#include <cstdio>

#include "grid/fileserver.hpp"
#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

namespace {

grid::ServerFarm* g_farm = nullptr;

shell::CommandResult wget(sim::Context& ctx,
                          const shell::CommandInvocation& inv) {
  // URL shape: http://<host>/<path>
  const std::string& url = inv.argv.at(1);
  const auto host_start = url.find("//") + 2;
  const auto host_end = url.find('/', host_start);
  const std::string host = url.substr(host_start, host_end - host_start);
  const std::string path = url.substr(host_end + 1);
  grid::FileServer* server = g_farm->by_name(host);
  if (!server) return {Status::not_found("no such host " + host), "", ""};
  Status s = path == "flag" ? server->fetch_flag(ctx)
                            : server->fetch(ctx, 100 << 20);
  return {s, "", ""};
}

const char* kAlohaScript = R"(
try for 900 seconds
  forany host in xxx yyy zzz
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
)";

const char* kEthernetScript = R"(
try for 900 seconds
  forany host in xxx yyy zzz
    try for 5 seconds
      wget http://${host}/flag
    end
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
)";

std::vector<grid::FileServerConfig> exp_farm();

// Runs `script` in a loop for `window` and reports completed downloads.
int run_readers(const char* label, const char* script, Duration window) {
  sim::Kernel kernel(23);
  grid::ServerFarm farm(kernel, exp_farm());
  g_farm = &farm;
  shell::SimExecutor executor(kernel);
  executor.register_command("wget", wget);

  int downloads = 0;
  for (int i = 0; i < 3; ++i) {
    kernel.spawn("reader" + std::to_string(i), [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::Interpreter interpreter(executor);
      shell::Environment env;
      while (true) {
        if (interpreter.run_source(script, env).ok()) ++downloads;
      }
    });
  }
  kernel.run_until(kEpoch + window);
  const auto served = [&farm] {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < farm.size(); ++i) {
      total += farm.server(i).transfers_completed();
    }
    return total;
  }();
  std::printf("%-9s %3d whole-file downloads (%lld server transfers incl. "
              "flag probes)\n",
              label, downloads, (long long)served);
  kernel.shutdown();
  g_farm = nullptr;
  return downloads;
}

std::vector<grid::FileServerConfig> exp_farm() {
  grid::FileServerConfig xxx;
  xxx.name = "xxx";
  grid::FileServerConfig yyy;
  yyy.name = "yyy";
  grid::FileServerConfig zzz;
  zzz.name = "zzz";
  zzz.black_hole = true;  // accepts connections, never answers
  return {xxx, yyy, zzz};
}

}  // namespace

int main() {
  std::printf("3 readers, 3 replicas (zzz is a black hole), 900 s window:\n");
  const int aloha = run_readers("aloha:", kAlohaScript, sec(900));
  const int ethernet = run_readers("ethernet:", kEthernetScript, sec(900));
  std::printf("\nThe flag-file probe is worth %.1fx here.\n",
              aloha ? double(ethernet) / double(aloha) : 0.0);
  return 0;
}
