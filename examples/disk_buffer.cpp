// Disk buffer: the producer/consumer scenario at demo scale, C++ API.
//
// Eight producers of each discipline in turn share a cramped buffer over a
// slow filesystem channel with a 1 MB/s consumer; the periodic report shows
// why carrier sense keeps the buffer flowing where aggressive retry chokes
// the shared medium with doomed writes.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "grid/clients.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

namespace {

void run_discipline(const std::string& discipline) {
  sim::Kernel kernel(5);
  grid::FsBuffer buffer(kernel, 24 << 20);  // 24 MB demo buffer
  grid::IoChannel channel(kernel, grid::IoChannelConfig{});
  grid::ConsumerStats consumer_stats;
  grid::ConsumerConfig consumer_config;
  kernel.spawn("consumer", grid::make_consumer(buffer, channel,
                                               consumer_config,
                                               &consumer_stats));
  std::vector<std::unique_ptr<grid::ProducerStats>> stats;
  for (int i = 0; i < 8; ++i) {
    grid::ProducerConfig pc;
    pc.discipline = discipline;
    pc.name_prefix = "p" + std::to_string(i);
    stats.push_back(std::make_unique<grid::ProducerStats>());
    kernel.spawn("producer" + std::to_string(i),
                 grid::make_producer(buffer, channel, pc, stats.back().get()));
  }

  std::printf("\n--- %s producers ---\n", discipline.c_str());
  std::printf("%8s %10s %10s %12s %11s\n", "t (s)", "consumed", "buffer MB",
              "collisions", "deferrals");
  for (int minute = 1; minute <= 5; ++minute) {
    kernel.run_until(kEpoch + minutes(minute));
    std::int64_t collisions = 0, deferrals = 0;
    for (const auto& s : stats) {
      collisions += s->discipline.collisions;
      deferrals += s->discipline.deferrals;
    }
    std::printf("%8d %10lld %10.1f %12lld %11lld\n", minute * 60,
                (long long)consumer_stats.files_consumed,
                double(buffer.used_bytes()) / (1 << 20),
                (long long)collisions, (long long)deferrals);
  }
  kernel.shutdown();
}

}  // namespace

int main() {
  run_discipline("fixed");
  run_discipline("aloha");
  run_discipline("ethernet");
  std::printf(
      "\nSame offered load, same buffer; only the client discipline "
      "differs.\n");
  return 0;
}
