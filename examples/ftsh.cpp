// ftsh: the fault tolerant shell, over real POSIX processes.
//
// Usage:
//   ftsh script.ftsh [args...]     run a script file
//   ftsh -c 'commands...' [args]   run commands from the argument
//   ftsh -n script.ftsh            parse only (syntax check)
//   ftsh -x ...                    trace: print each command as it runs
//   ftsh -a ...                    print the audit report (failure
//                                  frequencies per site) to stderr at exit
//   ftsh -l LEVEL ...              back-channel log level
//                                  (debug|info|warn|error; default warn)
//   ftsh --trace-out FILE ...      write a Perfetto/Chrome trace-event JSON
//                                  of the run (load at ui.perfetto.dev)
//
// Script arguments are available as ${1}..${n}, with ${0} the script name
// and ${#} the count.  Nested-shell protocol per the paper: on SIGTERM,
// ftsh terminates its own children's sessions before exiting.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "posix/posix_executor.hpp"
#include "shell/parser.hpp"
#include "shell/session.hpp"

using namespace ethergrid;

namespace {

posix::PosixExecutor* g_executor = nullptr;
volatile sig_atomic_t g_terminated = 0;

void on_sigterm(int) {
  g_terminated = 1;
  // "ftsh handles this gracefully by trapping the warning SIGTERMs from its
  //  parent and then reacting by killing its own children."
  if (g_executor) g_executor->terminate_all(SIGTERM);
}

int usage() {
  std::fprintf(stderr,
               "usage: ftsh [-n] [-l level] [--trace-out FILE] "
               "script.ftsh [args...]\n"
               "       ftsh [-l level] [--trace-out FILE] -c 'commands' "
               "[args...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool parse_only = false;
  bool from_argument = false;
  bool print_audit = false;
  bool trace = false;
  std::string trace_out;
  LogLevel level = LogLevel::kWarn;

  int arg = 1;
  for (; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "-n") == 0) {
      parse_only = true;
    } else if (std::strcmp(argv[arg], "-a") == 0) {
      print_audit = true;
    } else if (std::strcmp(argv[arg], "-x") == 0) {
      trace = true;
    } else if (std::strcmp(argv[arg], "--trace-out") == 0 && arg + 1 < argc) {
      trace_out = argv[++arg];
    } else if (std::strcmp(argv[arg], "-c") == 0) {
      from_argument = true;
      ++arg;
      break;
    } else if (std::strcmp(argv[arg], "-l") == 0 && arg + 1 < argc) {
      std::string name = argv[++arg];
      if (name == "debug") {
        level = LogLevel::kDebug;
      } else if (name == "info") {
        level = LogLevel::kInfo;
      } else if (name == "warn") {
        level = LogLevel::kWarn;
      } else if (name == "error") {
        level = LogLevel::kError;
      } else {
        return usage();
      }
    } else {
      break;
    }
  }
  if (arg >= argc) return usage();

  std::string source;
  std::string script_name;
  if (from_argument) {
    source = argv[arg];
    script_name = "-c";
  } else {
    script_name = argv[arg];
    std::ifstream in(script_name);
    if (!in) {
      std::fprintf(stderr, "ftsh: cannot open %s\n", script_name.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }
  ++arg;

  shell::ParseResult parsed = shell::parse_script(source);
  if (parsed.status.failed()) {
    std::fprintf(stderr, "ftsh: %s: %s\n", script_name.c_str(),
                 parsed.status.message().c_str());
    return 2;
  }
  if (parse_only) return 0;

  posix::PosixExecutor executor;
  g_executor = &executor;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigterm;
  sigaction(SIGTERM, &sa, nullptr);

  Logger logger(level);
  logger.set_sink([](const LogRecord& rec) {
    std::fprintf(stderr, "ftsh[%s] %.*s: %s\n",
                 format_duration(rec.time - kEpoch).c_str(),
                 int(log_level_name(rec.level).size()),
                 log_level_name(rec.level).data(), rec.message.c_str());
  });

  shell::SessionOptions options;
  options.logger = &logger;
  options.collect_audit = print_audit;
  options.collect_trace = !trace_out.empty();
  options.trace_process_name = "ftsh " + script_name;
  options.xtrace = trace;
  options.stdout_sink = [](std::string_view text) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
  };
  options.stderr_sink = [](std::string_view text) {
    std::fwrite(text.data(), 1, text.size(), stderr);
  };

  shell::Session session(executor, options);
  shell::Environment& env = session.environment();
  env.define("0", script_name);
  int positional = 0;
  for (; arg < argc; ++arg) {
    env.define(std::to_string(++positional), argv[arg]);
  }
  env.define("#", std::to_string(positional));

  Status status = session.run(*parsed.script);
  if (print_audit) {
    std::fprintf(stderr, "--- ftsh audit ---\n%s",
                 session.audit()->report().c_str());
  }
  if (!trace_out.empty()) {
    Status wrote = session.write_trace(trace_out);
    if (wrote.failed()) {
      std::fprintf(stderr, "ftsh: --trace-out: %s\n",
                   wrote.to_string().c_str());
    }
  }
  if (g_terminated) return 143;  // died of SIGTERM, children cleaned up
  if (status.failed()) {
    std::fprintf(stderr, "ftsh: %s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}
