#include "report.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/kernel.hpp"

namespace ethergrid::bench {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %g prints NaN/inf, which JSON rejects; clamp to null at the call site.
std::string json_number(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

std::string Report::path() {
  const char* env = std::getenv("ETHERGRID_BENCH_REPORT");
  if (env && std::string(env) == "off") return "";
  return env && *env ? env : "BENCH_results.json";
}

double Report::read_baseline_metric(const std::string& path,
                                    const std::string& name,
                                    const std::string& key) {
  std::ifstream in(path);
  if (!in) return 0;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::size_t entry = text.find("\"name\": \"" + name + "\"");
  if (entry == std::string::npos) return 0;
  const std::size_t pos = text.find("\"" + key + "\": ", entry);
  if (pos == std::string::npos) return 0;
  return std::atof(text.c_str() + pos + key.size() + 4);
}

Report::Report(std::string name) : name_(std::move(name)), start_ns_(now_ns()) {}

Report::~Report() { write(); }

void Report::add_events(std::uint64_t events) { events_ += events; }

void Report::shape(bool ok) {
  ++shape_checks_;
  shape_ok_ = shape_ok_ && ok;
}

void Report::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void Report::set_detail(std::string detail) { detail_ = std::move(detail); }

void Report::set_execution(std::size_t shards, std::size_t threads) {
  shards_ = shards;
  threads_ = threads;
}

void Report::set_discipline(std::string discipline) {
  discipline_ = std::move(discipline);
}

void Report::set_observability(std::string metrics_json) {
  observability_ = std::move(metrics_json);
}

void Report::write() {
  if (written_) return;
  written_ = true;
  const std::string file = path();
  if (file.empty()) return;

  const double wall = double(now_ns() - start_ns_) * 1e-9;
  // Benchmark-library binaries (micro_sim, micro_shell) report per-bench
  // rates through metric() and never see the kernel's event counter; for
  // them the Report's own wall clock spans only the report construction,
  // so the wall/events aggregates would be nonsense (microsecond walls,
  // zero events).  Null them out instead of publishing bogus numbers.
  const bool metric_only = events_ == 0 && !metrics_.empty();
  std::ostringstream entry;
  entry << "  {\"name\": \"" << json_escape(name_) << "\""
        << ", \"wall_seconds\": " << (metric_only ? "null" : json_number(wall))
        << ", \"events\": ";
  if (metric_only) {
    entry << "null";
  } else {
    entry << events_;
  }
  entry << ", \"events_per_sec\": "
        << (wall > 0 && events_ > 0 ? json_number(double(events_) / wall)
                                    : "null")
        << ", \"shape_ok\": "
        << (shape_checks_ == 0 ? "null" : (shape_ok_ ? "true" : "false"))
        << ", \"backend\": \""
        << sim::backend_name(sim::default_backend()) << "\""
        << ", \"queue\": \""
        << sim::queue_impl_name(sim::default_queue_impl()) << "\"";
  if (!discipline_.empty()) {
    entry << ", \"discipline\": \"" << json_escape(discipline_) << "\"";
  }
  if (shards_ > 0) {
    entry << ", \"shards\": " << shards_ << ", \"threads\": " << threads_;
  }
  if (!metrics_.empty()) {
    entry << ", \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i) entry << ", ";
      entry << "\"" << json_escape(metrics_[i].first)
            << "\": " << json_number(metrics_[i].second);
    }
    entry << "}";
  }
  if (!observability_.empty()) {
    // Already valid JSON from obs::MetricsRegistry::to_json(); embed raw.
    entry << ", \"observability\": " << observability_;
  }
  if (!detail_.empty()) {
    entry << ", \"detail\": \"" << json_escape(detail_) << "\"";
  }
  entry << "}";

  // Rewrite the whole array: keep every existing entry line except the one
  // this run supersedes, then append this run.  Each entry is written on
  // its own line, so the filter is a plain line scan -- re-running a
  // benchmark updates its row instead of accumulating duplicates, and the
  // file stays valid JSON between every run.  A fresh or garbled file just
  // starts a new array.
  //
  // The dedupe key is (name, backend, queue, shards, discipline): matrix
  // runs across queues / shard counts / disciplines each own a row instead
  // of clobbering each other's.  Per-facet migration rule: a line written
  // before a key field existed (no such key in the line) is superseded by
  // any run of the matching older key, and a facet this run leaves unset
  // only matches lines that also lack it.
  std::string existing;
  {
    std::ifstream in(file);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  const std::string name_tag = "\"name\": \"" + json_escape(name_) + "\"";
  const std::string backend_tag = std::string("\"backend\": \"") +
                                  sim::backend_name(sim::default_backend()) +
                                  "\"";
  const std::string queue_tag =
      std::string("\"queue\": \"") +
      sim::queue_impl_name(sim::default_queue_impl()) + "\"";
  const std::string shards_tag =
      shards_ > 0 ? "\"shards\": " + std::to_string(shards_) : "";
  const std::string discipline_tag =
      discipline_.empty()
          ? ""
          : "\"discipline\": \"" + json_escape(discipline_) + "\"";
  // True when `line` matches this run on the key facet whose field name is
  // `key` and whose full tag (field + value) for this run is `tag` ("" =
  // unset this run).  Lines predating the field match an older, coarser
  // key and are treated as matching.
  const auto facet_matches = [](const std::string& line,
                                const std::string& key,
                                const std::string& tag) {
    const bool line_has = line.find("\"" + key + "\":") != std::string::npos;
    if (tag.empty()) return !line_has;
    return !line_has || line.find(tag) != std::string::npos;
  };
  std::vector<std::string> entries;
  std::istringstream lines(existing);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '{') continue;
    while (!line.empty() && (line.back() == ',' || line.back() == ' ' ||
                             line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find(name_tag) != std::string::npos &&
        line.find(backend_tag) != std::string::npos &&
        facet_matches(line, "queue", queue_tag) &&
        facet_matches(line, "shards", shards_tag) &&
        facet_matches(line, "discipline", discipline_tag)) {
      continue;  // superseded by this run
    }
    entries.push_back(line);
  }
  entries.push_back(entry.str());

  std::ofstream out(file, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write report to %s\n", file.c_str());
    return;
  }
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << entries[i] << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

}  // namespace ethergrid::bench
