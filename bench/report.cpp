#include "report.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/kernel.hpp"

namespace ethergrid::bench {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %g prints NaN/inf, which JSON rejects; clamp to null at the call site.
std::string json_number(double value) {
  if (!(value == value) || value > 1e308 || value < -1e308) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

std::string Report::path() {
  const char* env = std::getenv("ETHERGRID_BENCH_REPORT");
  if (env && std::string(env) == "off") return "";
  return env && *env ? env : "BENCH_results.json";
}

Report::Report(std::string name) : name_(std::move(name)), start_ns_(now_ns()) {}

Report::~Report() { write(); }

void Report::add_events(std::uint64_t events) { events_ += events; }

void Report::shape(bool ok) {
  ++shape_checks_;
  shape_ok_ = shape_ok_ && ok;
}

void Report::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void Report::set_detail(std::string detail) { detail_ = std::move(detail); }

void Report::set_observability(std::string metrics_json) {
  observability_ = std::move(metrics_json);
}

void Report::write() {
  if (written_) return;
  written_ = true;
  const std::string file = path();
  if (file.empty()) return;

  const double wall = double(now_ns() - start_ns_) * 1e-9;
  std::ostringstream entry;
  entry << "  {\"name\": \"" << json_escape(name_) << "\""
        << ", \"wall_seconds\": " << json_number(wall)
        << ", \"events\": " << events_ << ", \"events_per_sec\": "
        << (wall > 0 && events_ > 0 ? json_number(double(events_) / wall)
                                    : "null")
        << ", \"shape_ok\": "
        << (shape_checks_ == 0 ? "null" : (shape_ok_ ? "true" : "false"))
        << ", \"backend\": \""
        << sim::backend_name(sim::default_backend()) << "\"";
  if (!metrics_.empty()) {
    entry << ", \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i) entry << ", ";
      entry << "\"" << json_escape(metrics_[i].first)
            << "\": " << json_number(metrics_[i].second);
    }
    entry << "}";
  }
  if (!observability_.empty()) {
    // Already valid JSON from obs::MetricsRegistry::to_json(); embed raw.
    entry << ", \"observability\": " << observability_;
  }
  if (!detail_.empty()) {
    entry << ", \"detail\": \"" << json_escape(detail_) << "\"";
  }
  entry << "}";

  // Append by rewriting the array terminator: the file is valid JSON
  // between every run, and a fresh/garbled file starts a new array.
  std::string existing;
  {
    std::ifstream in(file);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::size_t end = existing.find_last_of(']');
  std::ofstream out(file, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write report to %s\n", file.c_str());
    return;
  }
  if (end == std::string::npos || existing.find('[') == std::string::npos) {
    out << "[\n" << entry.str() << "\n]\n";
  } else {
    std::string head = existing.substr(0, end);
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' ' || head.back() == '\t')) {
      head.pop_back();
    }
    out << head << (head.back() == '[' ? "\n" : ",\n") << entry.str()
        << "\n]\n";
  }
}

}  // namespace ethergrid::bench
