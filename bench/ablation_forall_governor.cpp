// Ablation: the forall process-creation governor.
//
// The paper defers this: "the creation of processes must be governed by an
// Ethernet-like algorithm similar to that of try."  Here is why.  Many
// scripts fan out forall branches over one host with a finite process
// table.  The naive client treats a full table as fork() failure (the whole
// forall fails, the enclosing try retries the entire fan-out); the governed
// client carrier-senses the table and backs off per branch.
#include <cstdio>

#include "exp/table.hpp"
#include "report.hpp"
#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

namespace {

struct Outcome {
  int completed = 0;
  int failed = 0;
  double elapsed = 0;
};

Outcome run_fanouts(shell::ParallelPolicy::OnTableFull mode, int scripts,
                    std::int64_t table_slots, Duration window) {
  sim::Kernel kernel(7);
  shell::SimExecutor executor(kernel);
  shell::ParallelPolicy policy;
  policy.process_table_slots = table_slots;
  policy.on_table_full = mode;
  // Creation polling is a cheap carrier-sense: keep its backoff capped so a
  // waiting fan-out keeps probing rather than despairing for an hour.
  policy.backoff.cap = sec(5);
  executor.set_parallel_policy(policy);
  executor.register_command("work",
                            [](sim::Context& ctx,
                               const shell::CommandInvocation&) {
                              ctx.sleep(sec(5));
                              return shell::CommandResult{Status::success(),
                                                          "", ""};
                            });
  Outcome outcome;
  for (int i = 0; i < scripts; ++i) {
    kernel.spawn("script" + std::to_string(i), [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::Interpreter interpreter(executor);
      shell::Environment env;
      // Each work unit fans out 4 branches inside a bounded try.
      while (true) {
        Status s = interpreter.run_source(
            "try for 2 minutes\n"
            "  forall b in 1 2 3 4\n    work\n  end\n"
            "end",
            env);
        if (s.ok()) {
          ++outcome.completed;
        } else {
          ++outcome.failed;
        }
        // Limited allocation: a gap between fan-outs so the monopolists
        // do not re-grab every slot at the very instant they release it.
        ctx.sleep(sec(1));
      }
    });
  }
  kernel.run_until(kEpoch + window);
  outcome.elapsed = to_seconds(kernel.now());
  kernel.shutdown();
  return outcome;
}

}  // namespace

int main() {
  ethergrid::bench::Report report("ablation_forall_governor");
  exp::Table table(
      "Ablation: forall process-creation governor (20 scripts x 4-way "
      "fan-outs, 32-slot process table, 10 min)",
      {"mode", "fanouts_completed", "fanouts_failed"});

  std::fprintf(stderr, "[ablation_governor] naive fail-on-full...\n");
  Outcome naive = run_fanouts(shell::ParallelPolicy::OnTableFull::kFail, 20,
                              32, minutes(10));
  std::fprintf(stderr, "[ablation_governor] ethernet backoff...\n");
  Outcome governed = run_fanouts(shell::ParallelPolicy::OnTableFull::kBackoff,
                                 20, 32, minutes(10));

  table.add_row({"fail_on_full", exp::Table::cell(naive.completed),
                 exp::Table::cell(naive.failed)});
  table.add_row({"ethernet_backoff", exp::Table::cell(governed.completed),
                 exp::Table::cell(governed.failed)});
  table.print();

  std::printf(
      "\nFinding: aggregate throughput is pinned at the table's capacity "
      "either way (%d vs %d fan-outs) -- a saturated medium moves the same "
      "bits.  The governor's win is FAIRNESS: the naive client turns every "
      "full-table moment into a whole-fan-out failure, and unlucky scripts "
      "starve through entire try budgets (%d starved fan-outs vs %d "
      "governed).  Same lesson as the paper's Ethernet: backoff does not "
      "raise peak capacity, it keeps contention from becoming denial of "
      "service.\n",
      governed.completed, naive.completed, naive.failed, governed.failed);
  report.shape(governed.failed <= naive.failed);
  return 0;
}
