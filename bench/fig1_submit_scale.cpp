// Figure 1: Scalability of Job Submission.
//
// Paper: "the throughput of a varying load of submitters competing for a
// schedd.  Each point represents the number of jobs submitted in five
// minutes by the given number of submitters.  The fixed client fails
// completely above a load of 400 submitters.  The Aloha client settles into
// an unstable throughput of 100-200 jobs per five minutes ...  The Ethernet
// client maintains about 50 percent of peak performance under load."
//
// Usage: fig1_submit_scale [submitter counts...]   (default: paper sweep)
//
// After the paper sweep, a second pass measures the sharded kernel on a
// fig1-style multi-site grid: the same Ethernet workload partitioned
// across shards ∈ {1, 2, 4, 8}, threads = shards.  Knobs:
//   ETHERGRID_FIG1_SHARDED_SITES    sites/schedds      (default 8)
//   ETHERGRID_FIG1_SHARDED_CLIENTS  total submitters   (default 1600;
//                                   set 100000+ for the mega run)
//   ETHERGRID_FIG1_SHARDED_WINDOW_S virtual seconds    (default 300)
// With ETHERGRID_BENCH_BASELINE set, the run gates sharded_speedup_best
// against the committed baseline (skipped on < 4 hardware threads or
// when the baseline lacks the metric).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "obs/metrics.hpp"
#include "report.hpp"

using namespace ethergrid;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? parsed : fallback;
}

// Sharded scaling pass: wall-clock the same workload at increasing shard
// counts and gate the best speedup against the committed baseline.
// Returns the process exit code (0 ok, 1 gate breach).
int run_sharded_scale() {
  bench::Report report("fig1_sharded_scale");
  const std::size_t sites =
      std::size_t(env_long("ETHERGRID_FIG1_SHARDED_SITES", 8));
  const long clients = env_long("ETHERGRID_FIG1_SHARDED_CLIENTS", 1600);
  const auto window = sec(env_long("ETHERGRID_FIG1_SHARDED_WINDOW_S", 300));

  exp::ShardedSubmitConfig config;
  config.sites = sites;
  config.submitters_per_site = int(std::max(1l, clients / long(sites)));
  config.remote_per_site = 2;  // keep the cross-shard mailbox path hot
  // Slab-allocated fiber stacks: the mega run (10^5+ clients) would
  // otherwise exhaust vm.max_map_count with one guard mapping per fiber.
  config.sharded.kernel.fiber_stack_slab = 64;

  std::vector<std::size_t> shard_counts;
  for (std::size_t n : {std::size_t(1), std::size_t(2), std::size_t(4),
                        std::size_t(8)}) {
    if (n <= sites) shard_counts.push_back(n);
  }
  report.set_execution(shard_counts.back(), shard_counts.back());

  exp::Table table("Sharded kernel scaling (Ethernet discipline)",
                   {"shards", "threads", "wall_s", "speedup", "jobs",
                    "remote_jobs", "windows", "xshard_msgs"});
  double wall_1 = 0;
  double best_speedup = 0;
  std::int64_t jobs_ref = -1;
  bool jobs_stable = true;
  for (std::size_t n : shard_counts) {
    std::fprintf(stderr, "[fig1] sharded pass: %zu shard(s) x %ld clients\n",
                 n, long(config.submitters_per_site) * long(sites));
    config.sharded.shards = n;
    config.sharded.threads = n;
    const auto t0 = std::chrono::steady_clock::now();
    const exp::ShardedSubmitResult r = exp::run_sharded_submit(
        config, "ethernet", window);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (n == 1) wall_1 = wall;
    const double speedup = wall > 0 ? wall_1 / wall : 0;
    best_speedup = std::max(best_speedup, speedup);
    // Partition independence: per-site worlds are identical, so total
    // jobs must not move when the shard count does.
    if (jobs_ref < 0) jobs_ref = r.jobs_total;
    jobs_stable = jobs_stable && r.jobs_total == jobs_ref;
    table.add_row({exp::Table::cell(std::int64_t(n)),
                   exp::Table::cell(std::int64_t(r.threads)),
                   exp::Table::cell(wall), exp::Table::cell(speedup),
                   exp::Table::cell(r.jobs_total),
                   exp::Table::cell(r.remote_jobs),
                   exp::Table::cell(std::int64_t(r.windows)),
                   exp::Table::cell(std::int64_t(r.messages_delivered))});
    report.add_events(r.kernel_events);
    report.metric("sharded_wall_s_" + std::to_string(n), wall);
    if (n > 1) {
      report.metric("sharded_speedup_" + std::to_string(n), speedup);
    }
  }
  table.print();
  report.shape(jobs_stable && jobs_ref > 0);
  report.metric("sharded_jobs_total", double(jobs_ref));
  report.metric("sharded_speedup_best", best_speedup);
  std::printf("\nSharded shape check: jobs stable across shard counts -> %s; "
              "best speedup %.2fx\n",
              jobs_stable && jobs_ref > 0 ? "OK" : "MISMATCH", best_speedup);

  // Speedup gate: only meaningful against a committed baseline and with
  // enough cores that the parallel pass can actually win.
  const char* baseline_path = std::getenv("ETHERGRID_BENCH_BASELINE");
  if (baseline_path && *baseline_path) {
    const double baseline = bench::Report::read_baseline_metric(
        baseline_path, "fig1_sharded_scale", "sharded_speedup_best");
    const unsigned cores = std::thread::hardware_concurrency();
    if (baseline <= 0) {
      std::printf("Speedup gate: skipped (no sharded_speedup_best in %s)\n",
                  baseline_path);
    } else if (cores < 4) {
      std::printf("Speedup gate: skipped (%u hardware thread(s) < 4)\n",
                  cores);
    } else if (best_speedup < 0.6 * baseline) {
      std::fprintf(stderr,
                   "[fig1] SPEEDUP GATE BREACH: best %.2fx < 60%% of "
                   "baseline %.2fx\n",
                   best_speedup, baseline);
      return 1;
    } else {
      std::printf("Speedup gate: OK (best %.2fx vs baseline %.2fx)\n",
                  best_speedup, baseline);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fig1_submit_scale");
  std::vector<int> counts = {25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) counts.push_back(std::atoi(argv[i]));
  }

  exp::SubmitScenarioConfig config;  // paper-calibrated defaults
  // Aggregate back-channel metrics (crashes, fd-table exhaustion, ...)
  // across the sweep; the registry rides the report entry as
  // "observability".
  obs::MetricsRegistry registry;
  obs::ObserverSet observers;
  observers.add(&registry);
  config.observers = &observers;

  exp::Table table(
      "Figure 1: Scalability of Job Submission (jobs submitted in 5 minutes)",
      {"submitters", "fixed", "aloha", "ethernet", "crashes_fixed",
       "crashes_aloha", "crashes_ethernet"});

  struct Totals {
    std::int64_t jobs_low = 0, jobs_high = 0;
  } fixed_totals, aloha_totals, ethernet_totals;

  for (int n : counts) {
    std::fprintf(stderr, "[fig1] running %d submitters...\n", n);
    auto fixed = exp::run_submit_scale_point(config,
                                             "fixed", n);
    auto aloha = exp::run_submit_scale_point(config,
                                             "aloha", n);
    auto ether = exp::run_submit_scale_point(
        config, "ethernet", n);
    table.add_row({exp::Table::cell(n), exp::Table::cell(fixed.jobs_submitted),
                   exp::Table::cell(aloha.jobs_submitted),
                   exp::Table::cell(ether.jobs_submitted),
                   exp::Table::cell(fixed.schedd_crashes),
                   exp::Table::cell(aloha.schedd_crashes),
                   exp::Table::cell(ether.schedd_crashes)});
    auto tally = [n](Totals* t, std::int64_t jobs) {
      (n <= 100 ? t->jobs_low : t->jobs_high) += jobs;
    };
    tally(&fixed_totals, fixed.jobs_submitted);
    tally(&aloha_totals, aloha.jobs_submitted);
    tally(&ethernet_totals, ether.jobs_submitted);
    report.add_events(fixed.kernel_events + aloha.kernel_events +
                      ether.kernel_events);
  }
  table.print();

  std::printf(
      "\nShape check (paper: under load Ethernet > Aloha > Fixed; Fixed "
      "collapses at high N):\n");
  const bool ordered = ethernet_totals.jobs_high > aloha_totals.jobs_high &&
                       aloha_totals.jobs_high > fixed_totals.jobs_high;
  std::printf("  high-load totals: fixed=%lld aloha=%lld ethernet=%lld -> %s\n",
              (long long)fixed_totals.jobs_high,
              (long long)aloha_totals.jobs_high,
              (long long)ethernet_totals.jobs_high,
              ordered ? "OK" : "MISMATCH");
  report.shape(ordered);
  report.metric("jobs_high_fixed", double(fixed_totals.jobs_high));
  report.metric("jobs_high_aloha", double(aloha_totals.jobs_high));
  report.metric("jobs_high_ethernet", double(ethernet_totals.jobs_high));
  report.set_observability(registry.to_json());
  report.write();

  return run_sharded_scale();
}
