// Figure 1: Scalability of Job Submission.
//
// Paper: "the throughput of a varying load of submitters competing for a
// schedd.  Each point represents the number of jobs submitted in five
// minutes by the given number of submitters.  The fixed client fails
// completely above a load of 400 submitters.  The Aloha client settles into
// an unstable throughput of 100-200 jobs per five minutes ...  The Ethernet
// client maintains about 50 percent of peak performance under load."
//
// Usage: fig1_submit_scale [submitter counts...]   (default: paper sweep)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "obs/metrics.hpp"
#include "report.hpp"

using namespace ethergrid;

int main(int argc, char** argv) {
  bench::Report report("fig1_submit_scale");
  std::vector<int> counts = {25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) counts.push_back(std::atoi(argv[i]));
  }

  exp::SubmitScenarioConfig config;  // paper-calibrated defaults
  // Aggregate back-channel metrics (crashes, fd-table exhaustion, ...)
  // across the sweep; the registry rides the report entry as
  // "observability".
  obs::MetricsRegistry registry;
  obs::ObserverSet observers;
  observers.add(&registry);
  config.observers = &observers;

  exp::Table table(
      "Figure 1: Scalability of Job Submission (jobs submitted in 5 minutes)",
      {"submitters", "fixed", "aloha", "ethernet", "crashes_fixed",
       "crashes_aloha", "crashes_ethernet"});

  struct Totals {
    std::int64_t jobs_low = 0, jobs_high = 0;
  } fixed_totals, aloha_totals, ethernet_totals;

  for (int n : counts) {
    std::fprintf(stderr, "[fig1] running %d submitters...\n", n);
    auto fixed = exp::run_submit_scale_point(config,
                                             grid::DisciplineKind::kFixed, n);
    auto aloha = exp::run_submit_scale_point(config,
                                             grid::DisciplineKind::kAloha, n);
    auto ether = exp::run_submit_scale_point(
        config, grid::DisciplineKind::kEthernet, n);
    table.add_row({exp::Table::cell(n), exp::Table::cell(fixed.jobs_submitted),
                   exp::Table::cell(aloha.jobs_submitted),
                   exp::Table::cell(ether.jobs_submitted),
                   exp::Table::cell(fixed.schedd_crashes),
                   exp::Table::cell(aloha.schedd_crashes),
                   exp::Table::cell(ether.schedd_crashes)});
    auto tally = [n](Totals* t, std::int64_t jobs) {
      (n <= 100 ? t->jobs_low : t->jobs_high) += jobs;
    };
    tally(&fixed_totals, fixed.jobs_submitted);
    tally(&aloha_totals, aloha.jobs_submitted);
    tally(&ethernet_totals, ether.jobs_submitted);
    report.add_events(fixed.kernel_events + aloha.kernel_events +
                      ether.kernel_events);
  }
  table.print();

  std::printf(
      "\nShape check (paper: under load Ethernet > Aloha > Fixed; Fixed "
      "collapses at high N):\n");
  const bool ordered = ethernet_totals.jobs_high > aloha_totals.jobs_high &&
                       aloha_totals.jobs_high > fixed_totals.jobs_high;
  std::printf("  high-load totals: fixed=%lld aloha=%lld ethernet=%lld -> %s\n",
              (long long)fixed_totals.jobs_high,
              (long long)aloha_totals.jobs_high,
              (long long)ethernet_totals.jobs_high,
              ordered ? "OK" : "MISMATCH");
  report.shape(ordered);
  report.metric("jobs_high_fixed", double(fixed_totals.jobs_high));
  report.metric("jobs_high_aloha", double(aloha_totals.jobs_high));
  report.metric("jobs_high_ethernet", double(ethernet_totals.jobs_high));
  report.set_observability(registry.to_json());
  return 0;
}
