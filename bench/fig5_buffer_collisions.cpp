// Figure 5: Buffer Collisions.
//
// Same sweep as Figure 4 (deterministic: same seed => identical runs),
// reporting total failed writes.  Paper: fixed clients generate hundreds of
// collisions under saturation, Aloha far fewer, Ethernet nearly none.
//
// Usage: fig5_buffer_collisions [producer counts...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main(int argc, char** argv) {
  bench::Report report("fig5_buffer_collisions");
  std::vector<int> counts = {5, 10, 15, 20, 25, 30, 35, 40, 45, 50};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) counts.push_back(std::atoi(argv[i]));
  }

  exp::BufferScenarioConfig config;

  exp::Table table("Figure 5: Buffer Collisions (failed writes in 600 s)",
                   {"producers", "fixed", "aloha", "ethernet",
                    "ethernet_deferrals"});

  std::int64_t total_fixed = 0, total_aloha = 0, total_ethernet = 0;
  for (int n : counts) {
    std::fprintf(stderr, "[fig5] running %d producers...\n", n);
    auto fixed =
        exp::run_buffer_point(config, "fixed", n);
    auto aloha =
        exp::run_buffer_point(config, "aloha", n);
    auto ether =
        exp::run_buffer_point(config, "ethernet", n);
    table.add_row({exp::Table::cell(n), exp::Table::cell(fixed.collisions),
                   exp::Table::cell(aloha.collisions),
                   exp::Table::cell(ether.collisions),
                   exp::Table::cell(ether.deferrals)});
    total_fixed += fixed.collisions;
    total_aloha += aloha.collisions;
    total_ethernet += ether.collisions;
    report.add_events(fixed.kernel_events + aloha.kernel_events +
                      ether.kernel_events);
  }
  table.print();

  std::printf("\nShape check (paper: Fixed >> Aloha >> Ethernet ~ 0):\n");
  const bool separated =
      total_fixed > 3 * std::max<std::int64_t>(total_aloha, 1) &&
      total_aloha > 2 * std::max<std::int64_t>(total_ethernet, 1);
  std::printf("  totals: fixed=%lld aloha=%lld ethernet=%lld -> %s\n",
              (long long)total_fixed, (long long)total_aloha,
              (long long)total_ethernet, separated ? "OK" : "MISMATCH");
  report.shape(separated);
  report.metric("collisions_ethernet", double(total_ethernet));
  return 0;
}
