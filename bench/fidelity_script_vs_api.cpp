// Fidelity harness: the evaluation's client disciplines expressed two ways
// -- as real ftsh SCRIPTS run by the interpreter, and as C++ clients over
// the core API -- must produce the same system behaviour.  This is the
// bench that ties the language to the figures: the figure benches use the
// C++ clients for speed, and this binary demonstrates the equivalence.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "grid/clients.hpp"
#include "grid/schedd.hpp"
#include "report.hpp"
#include "shell/interpreter.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

namespace {

// The paper's scripts, verbatim (read-file-nr standing in for cut/proc).
const char* kAlohaScript = R"(
try for 5 minutes
  condor_submit submit.job
end
)";

const char* kEthernetScript = R"(
try for 5 minutes
  read-file-nr -> n
  if ${n} .lt. 1000
    failure
  else
    condor_submit submit.job
  end
end
)";

// N script-driven submitters against a fresh schedd world.
std::int64_t run_scripted(std::string_view discipline, int clients,
                          Duration window, std::uint64_t seed) {
  sim::Kernel kernel(seed);
  grid::Schedd schedd(kernel, grid::ScheddConfig{});
  shell::SimExecutor executor(kernel);
  executor.register_command(
      "condor_submit",
      [&schedd](sim::Context& ctx,
                const shell::CommandInvocation&) -> shell::CommandResult {
        return {schedd.submit(ctx), "", ""};
      });
  executor.register_command(
      "read-file-nr",
      [&schedd](sim::Context& ctx,
                const shell::CommandInvocation&) -> shell::CommandResult {
        ctx.sleep(msec(10));
        return {Status::success(),
                std::to_string(schedd.fd_table().available()), ""};
      });

  const char* script =
      discipline == "ethernet" ? kEthernetScript : kAlohaScript;
  for (int i = 0; i < clients; ++i) {
    kernel.spawn("script" + std::to_string(i), [&, i](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::InterpreterOptions options;
      options.seed = seed ^ (std::uint64_t(i) * 0x9e37u);
      shell::Interpreter interpreter(executor, options);
      shell::Environment env;
      while (true) {
        ctx.sleep(msec(500));  // condor_submit startup, as in the C++ client
        (void)interpreter.run_source(script, env);
      }
    });
  }
  kernel.run_until(kEpoch + window);
  const std::int64_t jobs = schedd.jobs_submitted();
  kernel.shutdown();
  return jobs;
}

std::int64_t run_api(std::string_view discipline, int clients,
                     Duration window, std::uint64_t seed) {
  exp::SubmitScenarioConfig config;
  config.seed = seed;
  return exp::run_submit_scale_point(config, discipline, clients, window)
      .jobs_submitted;
}

bool within(double a, double b, double tolerance) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  if (hi == 0) return true;
  return (hi - lo) / hi <= tolerance;
}

}  // namespace

int main() {
  ethergrid::bench::Report report("fidelity_script_vs_api");
  exp::Table table(
      "Fidelity: ftsh-scripted clients vs C++ API clients (jobs submitted)",
      {"scenario", "scripted", "api", "delta_pct"});

  struct Row {
    const char* name;
    const char* discipline;
    int clients;
    Duration window;
    double tolerance;
  };
  const Row rows[] = {
      {"aloha_uncontended_60x3min", "aloha", 60,
       minutes(3), 0.05},
      {"ethernet_uncontended_60x3min", "ethernet", 60,
       minutes(3), 0.05},
      {"ethernet_overload_450x2min", "ethernet", 450,
       minutes(2), 0.25},
      {"aloha_overload_450x2min", "aloha", 450,
       minutes(2), 0.35},
  };

  bool all_ok = true;
  for (const Row& row : rows) {
    std::fprintf(stderr, "[fidelity] %s...\n", row.name);
    const std::int64_t scripted =
        run_scripted(row.discipline, row.clients, row.window, 42);
    const std::int64_t api =
        run_api(row.discipline, row.clients, row.window, 42);
    const double delta =
        api ? 100.0 * double(scripted - api) / double(api) : 0.0;
    table.add_row({row.name, exp::Table::cell(scripted),
                   exp::Table::cell(api), exp::Table::cell(delta)});
    if (!within(double(scripted), double(api), row.tolerance)) all_ok = false;
  }
  table.print();

  std::printf(
      "\nFidelity check (scripted and API clients express the same "
      "discipline): %s\n",
      all_ok ? "OK" : "MISMATCH");
  report.shape(all_ok);
  return 0;
}
