// Prints a nanosecond wall-clock timestamp and exits with no teardown at
// all: the gap between this timestamp and PosixExecutor::run returning is
// pure supervision latency (EOF drain + exit wake + reap).  Used by
// micro_shell's BM_PosixExitToReturnLatency.
#include <unistd.h>

#include <chrono>
#include <cstdio>

int main() {
  const long long ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%lld", ns);
  (void)!::write(1, buf, len);
  ::_exit(0);
}
