// Figure 6: Aloha File Reader.
//
// Paper: three clients repeatedly fetch a 100 MB file from three replicated
// single-threaded servers, one of which is a black hole.  "Predictably, the
// Aloha clients occasionally all fall on the single black hole server and
// must wait the full sixty seconds before failing and trying elsewhere."
#include <cstdio>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main() {
  bench::Report report("fig6_aloha_reader");
  exp::ReaderScenarioConfig config;
  config.reader.discipline = "aloha";
  std::fprintf(stderr, "[fig6] 3 aloha readers vs black hole, 900 s...\n");
  exp::ReaderTimeline timeline =
      exp::run_reader_timeline(config, "aloha", sec(900), sec(30));

  exp::Table table(
      "Figure 6: Aloha File Reader (cumulative events, 3 clients, 900 s)",
      {"t_seconds", "transfers", "collisions"});
  for (const auto& p : timeline.points) {
    table.add_row({exp::Table::cell(p.t_seconds),
                   exp::Table::cell(p.transfers),
                   exp::Table::cell(p.collisions)});
  }
  table.print();

  std::printf("\nTotals: transfers=%lld collisions=%lld\n",
              (long long)timeline.transfers_total,
              (long long)timeline.collisions_total);
  std::printf("Shape check: progress made (transfers > 20): %s\n",
              timeline.transfers_total > 20 ? "OK" : "MISMATCH");
  std::printf(
      "Shape check: black-hole stalls paid (collisions >= 5): %s\n",
      timeline.collisions_total >= 5 ? "OK" : "MISMATCH");
  report.add_events(timeline.kernel_events);
  report.shape(timeline.transfers_total > 20);
  report.shape(timeline.collisions_total >= 5);
  report.metric("transfers", double(timeline.transfers_total));
  return 0;
}
