// Microbenchmarks: shell front end and the Ethernet core primitives.
#include <benchmark/benchmark.h>

#include "core/backoff.hpp"
#include "core/retry.hpp"
#include "core/sim_clock.hpp"
#include "posix/posix_executor.hpp"
#include "report.hpp"
#include "shell/interpreter.hpp"
#include "shell/lexer.hpp"
#include "shell/parser.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace ethergrid;

const char* kScript = R"(
# representative ftsh fragment
try for 1 hour
  forany host in xxx yyy zzz
    try for 5 minutes
      fetch-file ${host} filename
    end
  end
catch
  rm -f filename
  failure
end
n = 4
while ${n} .gt. 0
  n = ${n} .sub. 1
end
)";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto result = shell::lex(kScript);
    benchmark::DoNotOptimize(result.tokens.size());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(std::string(kScript).size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto result = shell::parse_script(kScript);
    benchmark::DoNotOptimize(result.script.get());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(std::string(kScript).size()));
}
BENCHMARK(BM_Parse);

void BM_InterpretEchoLoop(benchmark::State& state) {
  const std::string script =
      "i=0\nwhile ${i} .lt. 100\n  i = ${i} .add. 1\nend";
  auto parsed = shell::parse_script(script);
  for (auto _ : state) {
    sim::Kernel kernel;
    shell::SimExecutor executor(kernel);
    kernel.spawn("bench", [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::Interpreter interpreter(executor);
      shell::Environment env;
      Status s = interpreter.run(*parsed.script, env);
      benchmark::DoNotOptimize(s.ok());
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_InterpretEchoLoop);

void BM_BackoffNext(benchmark::State& state) {
  Rng rng(1);
  core::Backoff backoff(core::BackoffPolicy::paper_default(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backoff.next());
    if (backoff.failures() > 40) backoff.reset();
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BackoffNext);

void BM_RunTrySucceedFirst(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    kernel.spawn("bench", [&](sim::Context& ctx) {
      core::SimClock clock(ctx);
      Rng rng = ctx.rng();
      for (int i = 0; i < 100; ++i) {
        Status s = core::run_try(clock, rng, core::TryOptions::times(3),
                                 [](TimePoint) { return Status::success(); });
        benchmark::DoNotOptimize(s.ok());
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_RunTrySucceedFirst);

// ---- process-supervision latency (the event-driven engine's contract) ----
//
// Both cases set poll_interval far above the expected latency: if a fixed
// polling term ever re-enters the supervision hot path, the reported times
// jump to poll_interval and the regression is unmissable.

// Exit-to-return: total run() time for a trivial command with stdout sent
// to a file, so child exit is the *only* wake event the supervisor gets.
void BM_PosixExitToReturn(benchmark::State& state) {
  posix::PosixExecutorOptions o;
  o.poll_interval = msec(250);
  posix::PosixExecutor ex(o);
  for (auto _ : state) {
    shell::CommandInvocation i;
    i.argv = {"true"};
    i.stdout_file = "/dev/null";
    auto r = ex.run(i);
    benchmark::DoNotOptimize(r.status.ok());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PosixExitToReturn)->Unit(benchmark::kMillisecond)->UseRealTime();

// True exit-to-return latency: the exit_probe helper prints a nanosecond
// timestamp and _exits; the measured (manual) iteration time is the gap
// between that instant and run() returning -- EOF drain + exit wake + reap
// + status assembly, with fork/exec startup and child teardown excluded.
void BM_PosixExitToReturnLatency(benchmark::State& state) {
  posix::PosixExecutorOptions o;
  o.poll_interval = msec(250);
  posix::PosixExecutor ex(o);
  for (auto _ : state) {
    shell::CommandInvocation i;
    i.argv = {ETHERGRID_EXIT_PROBE_PATH};
    auto r = ex.run(i);
    const auto returned = std::chrono::system_clock::now();
    const long long exit_ns = std::atoll(r.out.c_str());
    const long long returned_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            returned.time_since_epoch())
            .count();
    state.SetIterationTime(
        std::max(0.0, double(returned_ns - exit_ns) / 1e9));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PosixExitToReturnLatency)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Kill-to-reap: deadline already expired, so run() immediately SIGTERMs the
// session and the measured time is kill -> death -> reap -> return.
void BM_PosixKillToReap(benchmark::State& state) {
  posix::PosixExecutorOptions o;
  o.poll_interval = msec(250);
  o.kill_grace = msec(100);
  posix::PosixExecutor ex(o);
  for (auto _ : state) {
    shell::CommandInvocation i;
    i.argv = {"sleep", "30"};
    i.deadline = ex.now() - sec(1);
    auto r = ex.run(i);
    benchmark::DoNotOptimize(r.status.code() == StatusCode::kTimeout);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PosixKillToReap)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  ethergrid::bench::Report report("micro_shell");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
