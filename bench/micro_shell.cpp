// Microbenchmarks: shell front end and the Ethernet core primitives.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>

#include "core/backoff.hpp"
#include "core/retry.hpp"
#include "core/sim_clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posix/posix_executor.hpp"
#include "report.hpp"
#include "shell/interpreter.hpp"
#include "shell/lexer.hpp"
#include "shell/parser.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

// Global allocation counter feeding the perf gate in main(): the number of
// heap allocations in a fixed-seed simulated run is exactly reproducible,
// unlike wall-clock throughput on a shared machine.
namespace {
std::atomic<std::int64_t> g_alloc_count{0};
void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ethergrid;

const char* kScript = R"(
# representative ftsh fragment
try for 1 hour
  forany host in xxx yyy zzz
    try for 5 minutes
      fetch-file ${host} filename
    end
  end
catch
  rm -f filename
  failure
end
n = 4
while ${n} .gt. 0
  n = ${n} .sub. 1
end
)";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto result = shell::lex(kScript);
    benchmark::DoNotOptimize(result.tokens.size());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(std::string(kScript).size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto result = shell::parse_script(kScript);
    benchmark::DoNotOptimize(result.script.get());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(std::string(kScript).size()));
}
BENCHMARK(BM_Parse);

void BM_InterpretEchoLoop(benchmark::State& state) {
  const std::string script =
      "i=0\nwhile ${i} .lt. 100\n  i = ${i} .add. 1\nend";
  auto parsed = shell::parse_script(script);
  for (auto _ : state) {
    sim::Kernel kernel;
    shell::SimExecutor executor(kernel);
    kernel.spawn("bench", [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::Interpreter interpreter(executor);
      shell::Environment env;
      Status s = interpreter.run(*parsed.script, env);
      benchmark::DoNotOptimize(s.ok());
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_InterpretEchoLoop);

// ---- observer overhead (the "compiles down to a null check" contract) ----
//
// 100 commands through the sim executor: the span-emission hot path.  The
// Off case holds a null ObserverSet* everywhere; the On case records into
// a TraceRecorder + MetricsRegistry.

const char kObserverScript[] =
    "i=0\nwhile ${i} .lt. 100\n  true\n  i = ${i} .add. 1\nend";

Status run_observer_workload(obs::ObserverSet* observers) {
  static const shell::ParseResult parsed = shell::parse_script(kObserverScript);
  sim::Kernel kernel;
  shell::SimExecutor executor(kernel);
  executor.set_observers(observers);
  shell::InterpreterOptions options;
  options.observers = observers;
  Status result;
  kernel.spawn("bench", [&](sim::Context& ctx) {
    shell::SimExecutor::ContextBinding binding(executor, ctx);
    shell::Interpreter interpreter(executor, options);
    shell::Environment env;
    result = interpreter.run(*parsed.script, env);
  });
  kernel.run();
  return result;
}

void BM_InterpretObserversOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_observer_workload(nullptr).ok());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_InterpretObserversOff);

void BM_InterpretObserversOn(benchmark::State& state) {
  for (auto _ : state) {
    obs::TraceRecorder trace("bench");
    obs::MetricsRegistry metrics;
    obs::ObserverSet set;
    set.add(&trace);
    set.add(&metrics);
    benchmark::DoNotOptimize(run_observer_workload(&set).ok());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_InterpretObserversOn);

// Emission cost in isolation: one begin/end pair through the set, no
// interpreter or kernel around it.  Splits the observer budget into "what
// the sinks cost" vs "what the interpreter adds".
void BM_SpanEmitMetrics(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  obs::ObserverSet set;
  set.add(&metrics);
  obs::Span span;
  span.kind = obs::SpanKind::kCommand;
  span.name = "true";
  for (auto _ : state) {
    set.begin_span(span);
    set.end_span(span);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SpanEmitMetrics);

void BM_SpanEmitTrace(benchmark::State& state) {
  obs::TraceRecorder trace("bench");
  obs::ObserverSet set;
  set.add(&trace);
  obs::Span span;
  span.kind = obs::SpanKind::kCommand;
  span.name = "true";
  span.detail = "true";
  for (auto _ : state) {
    set.begin_span(span);
    set.end_span(span);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_SpanEmitTrace);

void BM_BackoffNext(benchmark::State& state) {
  Rng rng(1);
  core::Backoff backoff(core::BackoffPolicy::paper_default(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backoff.next());
    if (backoff.failures() > 40) backoff.reset();
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BackoffNext);

void BM_RunTrySucceedFirst(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    kernel.spawn("bench", [&](sim::Context& ctx) {
      core::SimClock clock(ctx);
      Rng rng = ctx.rng();
      for (int i = 0; i < 100; ++i) {
        Status s = core::run_try(clock, rng, core::TryOptions::times(3),
                                 [](TimePoint) { return Status::success(); });
        benchmark::DoNotOptimize(s.ok());
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_RunTrySucceedFirst);

// ---- process-supervision latency (the event-driven engine's contract) ----
//
// Both cases set poll_interval far above the expected latency: if a fixed
// polling term ever re-enters the supervision hot path, the reported times
// jump to poll_interval and the regression is unmissable.

// Exit-to-return: total run() time for a trivial command with stdout sent
// to a file, so child exit is the *only* wake event the supervisor gets.
void BM_PosixExitToReturn(benchmark::State& state) {
  posix::PosixExecutorOptions o;
  o.poll_interval = msec(250);
  posix::PosixExecutor ex(o);
  for (auto _ : state) {
    shell::CommandInvocation i;
    i.argv = {"true"};
    i.stdout_file = "/dev/null";
    auto r = ex.run(i);
    benchmark::DoNotOptimize(r.status.ok());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PosixExitToReturn)->Unit(benchmark::kMillisecond)->UseRealTime();

// True exit-to-return latency: the exit_probe helper prints a nanosecond
// timestamp and _exits; the measured (manual) iteration time is the gap
// between that instant and run() returning -- EOF drain + exit wake + reap
// + status assembly, with fork/exec startup and child teardown excluded.
void BM_PosixExitToReturnLatency(benchmark::State& state) {
  posix::PosixExecutorOptions o;
  o.poll_interval = msec(250);
  posix::PosixExecutor ex(o);
  for (auto _ : state) {
    shell::CommandInvocation i;
    i.argv = {ETHERGRID_EXIT_PROBE_PATH};
    auto r = ex.run(i);
    const auto returned = std::chrono::system_clock::now();
    const long long exit_ns = std::atoll(r.out.c_str());
    const long long returned_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            returned.time_since_epoch())
            .count();
    state.SetIterationTime(
        std::max(0.0, double(returned_ns - exit_ns) / 1e9));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PosixExitToReturnLatency)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Kill-to-reap: deadline already expired, so run() immediately SIGTERMs the
// session and the measured time is kill -> death -> reap -> return.
void BM_PosixKillToReap(benchmark::State& state) {
  posix::PosixExecutorOptions o;
  o.poll_interval = msec(250);
  o.kill_grace = msec(100);
  posix::PosixExecutor ex(o);
  for (auto _ : state) {
    shell::CommandInvocation i;
    i.argv = {"sleep", "30"};
    i.deadline = ex.now() - sec(1);
    auto r = ex.run(i);
    benchmark::DoNotOptimize(r.status.code() == StatusCode::kTimeout);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PosixKillToReap)->Unit(benchmark::kMillisecond)->UseRealTime();

// Timed outside google-benchmark so the number lands in the Report entry
// (and the perf gate below) without parsing benchmark output.  Best of
// three windows: scheduler noise only ever slows a run down, so the max
// is the stable statistic to gate on.
double measure_interpret_per_sec(ethergrid::obs::ObserverSet* observers) {
  run_observer_workload(observers);  // warmup
  double best = 0;
  for (int window = 0; window < 3; ++window) {
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0;
    std::int64_t commands = 0;
    do {
      if (!run_observer_workload(observers).ok()) return 0;
      commands += 100;
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    } while (elapsed < 0.25);
    best = std::max(best, double(commands) / elapsed);
  }
  return best;
}

// The gate statistic: heap allocations for one observers-off workload run.
// Wall-clock throughput on a shared machine swings far more than any sane
// regression threshold, but the allocation count of a fixed-seed simulated
// run is exactly reproducible -- and observer work in the off path (span
// construction, string formatting) cannot hide from it.  Counted via the
// global operator new hooks below.
std::int64_t measure_allocs_observers_off() {
  run_observer_workload(nullptr);  // settle one-time statics
  const std::int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  run_observer_workload(nullptr);
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

}  // namespace

int main(int argc, char** argv) {
  ethergrid::bench::Report report("micro_shell");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Observer overhead headline numbers + the run's own metrics export.
  const double off = measure_interpret_per_sec(nullptr);
  ethergrid::obs::MetricsRegistry registry;
  ethergrid::obs::ObserverSet set;
  set.add(&registry);
  const double on = measure_interpret_per_sec(&set);
  const double allocs_off = double(measure_allocs_observers_off());
  const double overhead_pct = off > 0 ? 100.0 * (off - on) / off : 0.0;
  report.metric("interpret_per_sec_observers_off", off);
  report.metric("interpret_per_sec_observers_on", on);
  report.metric("allocs_per_interpret_off", allocs_off);
  if (off > 0) {
    report.metric("observer_overhead_pct", overhead_pct);
  }
  report.set_observability(registry.to_json());

  // Perf gate: with ETHERGRID_BENCH_BASELINE pointing at a baseline
  // BENCH_results.json, the observers-off path must stay within 3% of the
  // recorded per-run allocation count -- the "no observer == one null
  // check" contract.  Allocations rather than wall-clock throughput
  // because the count is exactly reproducible, so the gate cannot flake
  // on a loaded machine, while observer work leaking into the off path
  // (span construction, string formatting) still cannot hide from it.
  const char* baseline_path = std::getenv("ETHERGRID_BENCH_BASELINE");
  if (baseline_path && *baseline_path) {
    const double baseline_allocs = ethergrid::bench::Report::read_baseline_metric(
        baseline_path, "micro_shell", "allocs_per_interpret_off");
    if (baseline_allocs > 0 && allocs_off > 0) {
      const double regression = (allocs_off - baseline_allocs) / baseline_allocs;
      report.metric("observers_off_regression_pct", 100.0 * regression);
      report.shape(regression < 0.03);
      if (regression >= 0.03) {
        std::fprintf(stderr,
                     "micro_shell: observers-off workload cost regressed "
                     "%.1f%% (baseline %.0f allocations/run, now %.0f)\n",
                     100.0 * regression, baseline_allocs, allocs_off);
        return 1;
      }
    }
    // Second gate: live metrics recording must cost under 10% of
    // observers-off throughput.  Absolute threshold rather than a baseline
    // delta: the contract is "observability is effectively free", not "no
    // worse than last week".
    report.shape(overhead_pct < 10.0);
    if (overhead_pct >= 10.0) {
      std::fprintf(stderr,
                   "micro_shell: observer overhead %.1f%% breaches the 10%% "
                   "budget (off %.0f/s, on %.0f/s)\n",
                   overhead_pct, off, on);
      return 1;
    }
  }
  return 0;
}
