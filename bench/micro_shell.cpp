// Microbenchmarks: shell front end and the Ethernet core primitives.
#include <benchmark/benchmark.h>

#include "core/backoff.hpp"
#include "core/retry.hpp"
#include "core/sim_clock.hpp"
#include "shell/interpreter.hpp"
#include "shell/lexer.hpp"
#include "shell/parser.hpp"
#include "shell/sim_executor.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace ethergrid;

const char* kScript = R"(
# representative ftsh fragment
try for 1 hour
  forany host in xxx yyy zzz
    try for 5 minutes
      fetch-file ${host} filename
    end
  end
catch
  rm -f filename
  failure
end
n = 4
while ${n} .gt. 0
  n = ${n} .sub. 1
end
)";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto result = shell::lex(kScript);
    benchmark::DoNotOptimize(result.tokens.size());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(std::string(kScript).size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto result = shell::parse_script(kScript);
    benchmark::DoNotOptimize(result.script.get());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(std::string(kScript).size()));
}
BENCHMARK(BM_Parse);

void BM_InterpretEchoLoop(benchmark::State& state) {
  const std::string script =
      "i=0\nwhile ${i} .lt. 100\n  i = ${i} .add. 1\nend";
  auto parsed = shell::parse_script(script);
  for (auto _ : state) {
    sim::Kernel kernel;
    shell::SimExecutor executor(kernel);
    kernel.spawn("bench", [&](sim::Context& ctx) {
      shell::SimExecutor::ContextBinding binding(executor, ctx);
      shell::Interpreter interpreter(executor);
      shell::Environment env;
      Status s = interpreter.run(*parsed.script, env);
      benchmark::DoNotOptimize(s.ok());
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_InterpretEchoLoop);

void BM_BackoffNext(benchmark::State& state) {
  Rng rng(1);
  core::Backoff backoff(core::BackoffPolicy::paper_default(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backoff.next());
    if (backoff.failures() > 40) backoff.reset();
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BackoffNext);

void BM_RunTrySucceedFirst(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    kernel.spawn("bench", [&](sim::Context& ctx) {
      core::SimClock clock(ctx);
      Rng rng = ctx.rng();
      for (int i = 0; i < 100; ++i) {
        Status s = core::run_try(clock, rng, core::TryOptions::times(3),
                                 [](TimePoint) { return Status::success(); });
        benchmark::DoNotOptimize(s.ok());
      }
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_RunTrySucceedFirst);

}  // namespace

BENCHMARK_MAIN();
