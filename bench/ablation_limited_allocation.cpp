// Ablation: limited allocation.
//
// Paper: "Even after fairly acquiring a resource and using it without
// collision, a client must release it periodically to permit others to
// compete in the acquisition protocol.  Without this requirement, other
// clients may be starved of any service at all."
//
// We add "hog" clients that pin descriptor blocks permanently (never
// releasing between work units) alongside well-behaved Ethernet submitters,
// and measure how the cooperating clients' throughput decays as the pinned
// share grows.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"
#include "sim/kernel.hpp"

using namespace ethergrid;

int main() {
  bench::Report report("ablation_limited_allocation");
  exp::Table table(
      "Ablation: limited allocation (hogs pinning FDs vs 300 ethernet "
      "submitters, 5 min)",
      {"hogged_fds", "jobs_ethernet", "deferrals", "jobs_aloha_ctrl",
       "schedd_crashes"});

  for (std::int64_t hogged : {0, 4000, 6000, 6800, 7000, 7200}) {
    std::fprintf(stderr, "[ablation_hog] hogged=%lld...\n", (long long)hogged);
    sim::Kernel kernel(42);
    grid::ScheddConfig sc;  // paper defaults
    grid::Schedd schedd(kernel, sc);
    if (hogged > 0) {
      // The hogs: acquired once, never released -- the anti-pattern.
      bool ok = schedd.fd_table().try_allocate(hogged);
      if (!ok) std::fprintf(stderr, "hog allocation failed\n");
    }
    std::vector<grid::SubmitterStats> stats(300);
    grid::SubmitterConfig submitter;
    submitter.discipline = "ethernet";
    for (int i = 0; i < 300; ++i) {
      kernel.spawn("submitter" + std::to_string(i),
                   grid::make_submitter(schedd, submitter, &stats[i]));
    }
    kernel.run_until(kEpoch + minutes(5));
    std::int64_t deferrals = 0;
    for (const auto& s : stats) deferrals += s.discipline.deferrals;
    const std::int64_t ethernet_jobs = schedd.jobs_submitted();
    const int crashes = schedd.crashes();
    kernel.shutdown();

    // Control: the same pinned share against Aloha clients, which have no
    // threshold to be starved below (but pay collisions instead).
    sim::Kernel kernel2(42);
    grid::Schedd schedd2(kernel2, sc);
    if (hogged > 0) (void)schedd2.fd_table().try_allocate(hogged);
    std::vector<grid::SubmitterStats> stats2(300);
    grid::SubmitterConfig aloha = submitter;
    aloha.discipline = "aloha";
    for (int i = 0; i < 300; ++i) {
      kernel2.spawn("submitter" + std::to_string(i),
                    grid::make_submitter(schedd2, aloha, &stats2[i]));
    }
    kernel2.run_until(kEpoch + minutes(5));
    const std::int64_t aloha_jobs = schedd2.jobs_submitted();
    report.add_events(kernel.events_processed() + kernel2.events_processed());
    kernel2.shutdown();

    table.add_row({exp::Table::cell(hogged), exp::Table::cell(ethernet_jobs),
                   exp::Table::cell(deferrals), exp::Table::cell(aloha_jobs),
                   exp::Table::cell(crashes)});
  }
  table.print();

  std::printf(
      "\nFinding: once the pinned share pushes free descriptors below the "
      "carrier threshold, Ethernet clients defer forever -- total denial of "
      "service while ~1000 descriptors still sit free.  Aloha clients limp "
      "on.  Limited allocation is load-bearing, and carrier sense makes "
      "liveness depend on others honoring it (the paper's 'obnoxious "
      "customer' point).\n");
  return 0;
}
