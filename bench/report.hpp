// Bench report: one headline JSON entry per bench binary.
//
// Every binary under bench/ constructs a Report at the top of main and
// feeds it the run's headline numbers; the destructor appends one object
// to a machine-readable JSON array so a whole suite run leaves a single
// BENCH_results.json behind for CI artifacts and regression diffing.
//
//   {"name": "fig1_submit_scale", "wall_seconds": 1.84,
//    "events": 5183021, "events_per_sec": 2816859.2,
//    "shape_ok": true, "backend": "fiber", "queue": "wheel",
//    "metrics": {"jobs_high_ethernet": 5321}, "detail": ""}
//
// Report path: $ETHERGRID_BENCH_REPORT, default ./BENCH_results.json;
// set it to "off" to disable reporting entirely.  Appending re-writes the
// array terminator, so the file is valid JSON after every binary exits.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ethergrid::bench {

class Report {
 public:
  // Starts the wall clock.  `name` should be the binary's basename.
  explicit Report(std::string name);
  // Writes the entry (unless write() already ran or reporting is off).
  ~Report();

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  // Accumulates virtual-time events processed (sum across kernels/runs);
  // events_per_sec in the entry is this total over the wall clock.  A
  // metric-only report (metric() called, never add_events()) emits null
  // for wall_seconds/events/events_per_sec: its wall clock spans only the
  // report object's lifetime, not the measured work.
  void add_events(std::uint64_t events);

  // Records one shape-check outcome; the entry's shape_ok is the AND of
  // all calls.  Never calling it emits shape_ok: null.
  void shape(bool ok);

  // Extra headline numbers worth tracking across commits.
  void metric(const std::string& key, double value);

  // Free-text annotation (configuration, sweep range, caveats).
  void set_detail(std::string detail);

  // Records the execution shape of a sharded run; the entry then carries
  // "shards" and "threads" fields.  Unset (the default) omits them, so
  // single-kernel benches keep their historical entry format.
  void set_execution(std::size_t shards, std::size_t threads);

  // Records the client discipline the run measured; the entry then carries
  // a "discipline" field and the dedupe key includes it, so one bench
  // sweeping disciplines can publish one entry per discipline (construct
  // one Report per discipline with the same name).
  void set_discipline(std::string discipline);

  // Embeds a pre-rendered JSON object (obs::MetricsRegistry::to_json())
  // as the entry's "observability" field -- the flat counters/histograms
  // the run's ObserverSet collected.
  void set_observability(std::string metrics_json);

  // Appends the entry now; subsequent calls and the destructor are no-ops.
  void write();

  // Resolved report path ("" when reporting is disabled).
  static std::string path();

  // Pulls metrics.<key> out of the `name` entry of a BENCH_results.json
  // (e.g. the committed bench/BASELINE.json); returns 0 when the file,
  // entry, or key is missing so callers can skip their gate.
  static double read_baseline_metric(const std::string& path,
                                     const std::string& name,
                                     const std::string& key);

 private:
  std::string name_;
  std::string detail_;
  std::string discipline_;  // "" = unset, field omitted
  std::string observability_;  // pre-rendered JSON object, may be empty
  std::vector<std::pair<std::string, double>> metrics_;
  std::uint64_t events_ = 0;
  std::size_t shards_ = 0;   // 0 = unset, fields omitted
  std::size_t threads_ = 0;  // 0 = unset, fields omitted
  int shape_checks_ = 0;
  bool shape_ok_ = true;
  bool written_ = false;
  std::int64_t start_ns_ = 0;
};

}  // namespace ethergrid::bench
