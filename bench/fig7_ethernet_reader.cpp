// Figure 7: Ethernet File Reader.
//
// Paper: the Ethernet client first fetches a well-known one-byte flag file
// with a 5-second limit; only on success does it attempt the 100 MB
// transfer.  "The Ethernet clients are much more effective and suffer from
// no such hiccups."
#include <cstdio>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main() {
  bench::Report report("fig7_ethernet_reader");
  exp::ReaderScenarioConfig config;
  std::fprintf(stderr, "[fig7] 3 ethernet readers vs black hole, 900 s...\n");
  exp::ReaderTimeline ethernet = exp::run_reader_timeline(
      config, "ethernet", sec(900), sec(30));
  // For the by-what-factor comparison the paper implies between Figures 6
  // and 7, rerun the Aloha configuration with the same seed.
  exp::ReaderTimeline aloha = exp::run_reader_timeline(
      config, "aloha", sec(900), sec(30));

  exp::Table table(
      "Figure 7: Ethernet File Reader (cumulative events, 3 clients, 900 s)",
      {"t_seconds", "transfers", "deferrals"});
  for (const auto& p : ethernet.points) {
    table.add_row({exp::Table::cell(p.t_seconds),
                   exp::Table::cell(p.transfers),
                   exp::Table::cell(p.deferrals)});
  }
  table.print();

  std::printf("\nTotals: transfers=%lld deferrals=%lld collisions=%lld "
              "(aloha transfers=%lld)\n",
              (long long)ethernet.transfers_total,
              (long long)ethernet.deferrals_total,
              (long long)ethernet.collisions_total,
              (long long)aloha.transfers_total);
  std::printf("Shape check: no 60 s stalls (collisions == 0): %s\n",
              ethernet.collisions_total == 0 ? "OK" : "MISMATCH");
  std::printf("Shape check: probes deferred around the hole (deferrals > 0): "
              "%s\n",
              ethernet.deferrals_total > 0 ? "OK" : "MISMATCH");
  std::printf("Shape check: Ethernet beats Aloha (%lld > %lld): %s\n",
              (long long)ethernet.transfers_total,
              (long long)aloha.transfers_total,
              ethernet.transfers_total > aloha.transfers_total ? "OK"
                                                               : "MISMATCH");
  report.add_events(ethernet.kernel_events + aloha.kernel_events);
  report.shape(ethernet.collisions_total == 0);
  report.shape(ethernet.deferrals_total > 0);
  report.shape(ethernet.transfers_total > aloha.transfers_total);
  report.metric("transfers_ethernet", double(ethernet.transfers_total));
  return 0;
}
