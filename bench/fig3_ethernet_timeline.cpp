// Figure 3: Timeline of Ethernet Submitter.
//
// Paper: "The Ethernet client attempts to preserve a critical value of file
// descriptors.  The result is that an acceptable number of clients are
// continually running, keeping the FDs at a high utilization."
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

// Same offered load as Figure 2 (420 clients, just past the FD-table
// critical point) so the two timelines are directly comparable.
int main(int argc, char** argv) {
  bench::Report report("fig3_ethernet_timeline");
  const int clients = argc > 1 ? std::atoi(argv[1]) : 420;
  exp::SubmitScenarioConfig config;
  std::fprintf(stderr, "[fig3] %d ethernet submitters, 1800 s...\n", clients);
  exp::SubmitterTimeline timeline = exp::run_submitter_timeline(
      config, "ethernet", clients, sec(1800), sec(10));

  exp::Table table("Figure 3: Timeline of Ethernet Submitter (" +
                       std::to_string(clients) + " clients)",
                   {"t_seconds", "available_fds", "jobs_submitted"});
  for (const auto& p : timeline.points) {
    table.add_row({exp::Table::cell(p.t_seconds),
                   exp::Table::cell(p.available_fds),
                   exp::Table::cell(p.jobs_submitted)});
  }
  table.print();

  // After the initial transient the FD level should sit near (not far
  // below) the 1000-descriptor threshold, with few or no crashes, and jobs
  // should accumulate steadily.
  double min_fds_steady = 1e18;
  for (const auto& p : timeline.points) {
    if (p.t_seconds < 120) continue;  // skip startup transient
    min_fds_steady = std::min(min_fds_steady, p.available_fds);
  }
  std::printf("\nTotals: jobs=%lld schedd_crashes=%d\n",
              (long long)timeline.jobs_total, timeline.schedd_crashes);
  std::printf(
      "Shape check: high utilization without exhaustion (steady min=%g in "
      "[300,2500]): %s\n",
      min_fds_steady,
      (min_fds_steady >= 300 && min_fds_steady <= 2500) ? "OK" : "MISMATCH");
  std::printf("Shape check: few crashes (%d <= 1): %s\n",
              timeline.schedd_crashes,
              timeline.schedd_crashes <= 1 ? "OK" : "MISMATCH");
  std::printf("Shape check: steady submission (%lld jobs > 1000): %s\n",
              (long long)timeline.jobs_total,
              timeline.jobs_total > 1000 ? "OK" : "MISMATCH");
  report.add_events(timeline.kernel_events);
  report.shape(min_fds_steady >= 300 && min_fds_steady <= 2500);
  report.shape(timeline.schedd_crashes <= 1);
  report.shape(timeline.jobs_total > 1000);
  report.metric("jobs_total", double(timeline.jobs_total));
  return 0;
}
