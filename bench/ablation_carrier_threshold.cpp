// Ablation: the Ethernet submitter's carrier-sense threshold.
//
// The paper's script defers when fewer than 1000 descriptors are free.  Too
// low a threshold fails to protect the schedd's own allocations (crashes
// return); too high wastes capacity by keeping clients out.  Sweep at 450
// offered clients.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main() {
  bench::Report report("ablation_carrier_threshold");
  exp::Table table(
      "Ablation: carrier-sense FD threshold (450 ethernet submitters, 5 min)",
      {"threshold", "jobs", "schedd_crashes", "fd_low_watermark"});

  for (std::int64_t threshold : {100, 250, 500, 1000, 2000, 4000, 6000, 7500}) {
    std::fprintf(stderr, "[ablation_threshold] threshold=%lld...\n",
                 (long long)threshold);
    exp::SubmitScenarioConfig config;
    config.submitter.fd_threshold = threshold;
    auto point = exp::run_submit_scale_point(
        config, "ethernet", 450);
    table.add_row({exp::Table::cell(threshold),
                   exp::Table::cell(point.jobs_submitted),
                   exp::Table::cell(point.schedd_crashes),
                   exp::Table::cell(point.fd_low_watermark)});
    report.add_events(point.kernel_events);
  }
  table.print();

  std::printf(
      "\nFinding: a larger threshold admits fewer concurrent connections, "
      "which also unloads the schedd's CPU (service speeds up) -- until the "
      "margin grows so large that too few clients are admitted to keep the "
      "service slots busy and throughput falls off.  The single crash in "
      "every row is the t=0 stampede: carrier sense cannot help before the "
      "first measurements exist.\n");
  return 0;
}
