// Ablation: the maximum backoff delay.
//
// Paper policy caps the exponential delay at one hour.  A small cap keeps
// clients aggressive (more pressure, more schedd crashes); a huge cap
// strands clients in long sleeps after a burst passes.  This sweep shows
// the trade-off for 450 Aloha submitters over 30 minutes.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main() {
  bench::Report report("ablation_backoff_cap");
  exp::Table table(
      "Ablation: backoff cap sweep (450 aloha submitters, 30 min window)",
      {"cap_seconds", "jobs", "schedd_crashes"});

  struct Row {
    double cap;
    std::int64_t jobs;
  };
  std::vector<Row> rows;
  for (double cap_s : {2.0, 10.0, 60.0, 600.0, 3600.0}) {
    std::fprintf(stderr, "[ablation_cap] cap=%gs...\n", cap_s);
    exp::SubmitScenarioConfig config;
    core::BackoffPolicy policy = core::BackoffPolicy::paper_default();
    policy.cap = sec(cap_s);
    config.submitter.backoff = policy;
    auto point = exp::run_submit_scale_point(
        config, "aloha", 450, sec(1800));
    table.add_row({exp::Table::cell(cap_s),
                   exp::Table::cell(point.jobs_submitted),
                   exp::Table::cell(point.schedd_crashes)});
    rows.push_back(Row{cap_s, point.jobs_submitted});
    report.add_events(point.kernel_events);
  }
  table.print();

  std::printf(
      "\nFinding: tiny caps keep the herd aggressive (crash pressure); the "
      "paper's 1 h cap trades a little post-burst latency for stability.\n");
  return 0;
}
