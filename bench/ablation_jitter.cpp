// Ablation: the random backoff factor.
//
// Paper: "the problem will not be solved if all clients return at the same
// instant, so some asymmetry or random factor is needed to discourage
// cascading collisions."  This study removes the uniform [1,2) multiplier
// from the Aloha submitters' backoff and measures what synchronization
// costs under overload.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main() {
  bench::Report report("ablation_jitter");
  exp::Table table(
      "Ablation: backoff jitter on/off (aloha submitters, 5 min window)",
      {"submitters", "jobs_jitter", "jobs_nojitter", "crashes_jitter",
       "crashes_nojitter"});

  std::int64_t with_total = 0, without_total = 0;
  for (int n : {420, 450, 500}) {
    std::fprintf(stderr, "[ablation_jitter] %d submitters...\n", n);
    exp::SubmitScenarioConfig with_jitter;  // paper default: jitter [1,2)
    auto with_point = exp::run_submit_scale_point(
        with_jitter, "aloha", n);

    exp::SubmitScenarioConfig without_jitter;
    without_jitter.submitter.backoff = core::BackoffPolicy::no_jitter();
    auto without_point = exp::run_submit_scale_point(
        without_jitter, "aloha", n);

    table.add_row({exp::Table::cell(n),
                   exp::Table::cell(with_point.jobs_submitted),
                   exp::Table::cell(without_point.jobs_submitted),
                   exp::Table::cell(with_point.schedd_crashes),
                   exp::Table::cell(without_point.schedd_crashes)});
    with_total += with_point.jobs_submitted;
    without_total += without_point.jobs_submitted;
    report.add_events(with_point.kernel_events + without_point.kernel_events);
  }
  table.print();

  std::printf(
      "\nFinding: jitter %s throughput under overload (%lld vs %lld "
      "without).\n",
      with_total >= without_total ? "preserves" : "did NOT preserve",
      (long long)with_total, (long long)without_total);
  report.shape(with_total >= without_total);
  return 0;
}
