// Microbenchmarks: the discrete-event kernel itself.
#include <benchmark/benchmark.h>

#include "sim/kernel.hpp"
#include "sim/resource.hpp"
#include "sim/store.hpp"

namespace {

using namespace ethergrid;

// Cost of spawning and draining N trivial processes (thread create + one
// baton round trip each).
void BM_SpawnDrain(benchmark::State& state) {
  const int n = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    for (int i = 0; i < n; ++i) {
      kernel.spawn("p", [](sim::Context&) {});
    }
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n);
}
BENCHMARK(BM_SpawnDrain)->Arg(1)->Arg(16)->Arg(128);

// Context-switch cost: one process sleeping K times (schedule + 2 handoffs
// per event).
void BM_SleepEvents(benchmark::State& state) {
  const int k = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    kernel.spawn("sleeper", [&](sim::Context& ctx) {
      for (int i = 0; i < k; ++i) ctx.sleep(msec(1));
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_SleepEvents)->Arg(1000)->Arg(10000);

// Two processes ping-ponging through events: measures broadcast wake +
// reschedule round trips.
void BM_EventPingPong(benchmark::State& state) {
  const int rounds = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Event ping(kernel), pong(kernel);
    // Latched set/reset so no wake is lost regardless of arrival order.
    kernel.spawn("a", [&](sim::Context& ctx) {
      for (int i = 0; i < rounds; ++i) {
        ping.set();
        ctx.wait(pong);
        pong.reset();
      }
    });
    kernel.spawn("b", [&](sim::Context& ctx) {
      for (int i = 0; i < rounds; ++i) {
        ctx.wait(ping);
        ping.reset();
        pong.set();
      }
    });
    kernel.run();
    if (kernel.live_process_count() != 0) {
      state.SkipWithError("ping-pong deadlocked");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * rounds);
}
BENCHMARK(BM_EventPingPong)->Arg(1000);

// Resource churn through a contended FIFO.
void BM_ResourceChurn(benchmark::State& state) {
  const int workers = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Resource resource(kernel, 2);
    for (int w = 0; w < workers; ++w) {
      kernel.spawn("w", [&](sim::Context& ctx) {
        for (int i = 0; i < 50; ++i) {
          sim::ResourceLease lease(ctx, resource);
          ctx.sleep(msec(1));
        }
      });
    }
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * workers * 50);
}
BENCHMARK(BM_ResourceChurn)->Arg(4)->Arg(16);

void BM_StoreThroughput(benchmark::State& state) {
  const int items = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Store<int> store(kernel, 64);
    kernel.spawn("producer", [&](sim::Context& ctx) {
      for (int i = 0; i < items; ++i) store.put(ctx, i);
    });
    kernel.spawn("consumer", [&](sim::Context& ctx) {
      for (int i = 0; i < items; ++i) benchmark::DoNotOptimize(store.get(ctx));
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * items);
}
BENCHMARK(BM_StoreThroughput)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
