// Microbenchmarks: the discrete-event kernel itself.
//
// The scheduler benchmarks (BM_SwitchRoundTrip / BM_SpawnJoin /
// BM_PingStorm) run on BOTH execution backends so the fiber-vs-thread
// speedup is measured, not assumed.  The custom main captures their
// items/sec into the shared bench report; headline entry includes the
// fiber/thread context-switch throughput ratio.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "report.hpp"
#include "sim/kernel.hpp"
#include "sim/resource.hpp"
#include "sim/store.hpp"

namespace {

using namespace ethergrid;

sim::KernelOptions with_backend(sim::Backend backend) {
  sim::KernelOptions options;
  options.backend = backend;
  return options;
}

// Under TSan the kernel silently forces the thread backend; skip the fiber
// rows there instead of mislabeling thread numbers as fiber numbers.
bool backend_unavailable(benchmark::State& state, const sim::Kernel& kernel,
                         sim::Backend wanted) {
  if (kernel.backend() == wanted) return false;
  state.SkipWithError("requested backend unavailable in this build");
  return true;
}

// ---------------------------------------------- scheduler head-to-heads

// Context-switch round-trip throughput: one process sleeping K times.
// Every event is one scheduler->process->scheduler round trip, so
// items/sec IS switch-pair throughput.
void BM_SwitchRoundTrip(benchmark::State& state, sim::Backend backend) {
  const int k = 20000;
  for (auto _ : state) {
    sim::Kernel kernel(1, with_backend(backend));
    if (backend_unavailable(state, kernel, backend)) return;
    kernel.spawn("switcher", [&](sim::Context& ctx) {
      for (int i = 0; i < k; ++i) ctx.sleep(msec(1));
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK_CAPTURE(BM_SwitchRoundTrip, fiber, sim::Backend::kFiber);
BENCHMARK_CAPTURE(BM_SwitchRoundTrip, thread, sim::Backend::kThread);

// Spawn/join latency: create N trivial processes, run them to completion,
// tear the kernel down.  Captures stack/thread creation plus the first and
// last switch of every process.
void BM_SpawnJoin(benchmark::State& state, sim::Backend backend) {
  const int n = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel(1, with_backend(backend));
    if (backend_unavailable(state, kernel, backend)) return;
    for (int i = 0; i < n; ++i) {
      kernel.spawn("p", [](sim::Context&) {});
    }
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n);
}
BENCHMARK_CAPTURE(BM_SpawnJoin, fiber, sim::Backend::kFiber)
    ->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_SpawnJoin, thread, sim::Backend::kThread)
    ->Arg(16)->Arg(256);

// Ping storm: N processes all sleeping on short staggered timers -- a
// large live population churning through the wakeup queue.  10k fibers are
// cheap; 10k threads would trip container pid limits (and take minutes),
// so the thread row runs 2000 and items/sec stays comparable.
void BM_PingStorm(benchmark::State& state, sim::Backend backend) {
  const int n = int(state.range(0));
  const int rounds = 10;
  for (auto _ : state) {
    sim::Kernel kernel(1, with_backend(backend));
    if (backend_unavailable(state, kernel, backend)) return;
    for (int i = 0; i < n; ++i) {
      kernel.spawn("p", [&, i](sim::Context& ctx) {
        for (int r = 0; r < rounds; ++r) ctx.sleep(msec(1 + i % 7));
      });
    }
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n * rounds);
}
BENCHMARK_CAPTURE(BM_PingStorm, fiber, sim::Backend::kFiber)
    ->Arg(10000)->Iterations(1);
BENCHMARK_CAPTURE(BM_PingStorm, thread, sim::Backend::kThread)
    ->Arg(2000)->Iterations(1);

// ------------------------------------------------- default-backend suite

// Cost of spawning and draining N trivial processes.
void BM_SpawnDrain(benchmark::State& state) {
  const int n = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    for (int i = 0; i < n; ++i) {
      kernel.spawn("p", [](sim::Context&) {});
    }
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n);
}
BENCHMARK(BM_SpawnDrain)->Arg(1)->Arg(16)->Arg(128);

// Context-switch cost: one process sleeping K times (schedule + 2 handoffs
// per event).
void BM_SleepEvents(benchmark::State& state) {
  const int k = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    kernel.spawn("sleeper", [&](sim::Context& ctx) {
      for (int i = 0; i < k; ++i) ctx.sleep(msec(1));
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_SleepEvents)->Arg(1000)->Arg(10000);

// Two processes ping-ponging through events: measures broadcast wake +
// reschedule round trips.
void BM_EventPingPong(benchmark::State& state) {
  const int rounds = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Event ping(kernel), pong(kernel);
    // Latched set/reset so no wake is lost regardless of arrival order.
    kernel.spawn("a", [&](sim::Context& ctx) {
      for (int i = 0; i < rounds; ++i) {
        ping.set();
        ctx.wait(pong);
        pong.reset();
      }
    });
    kernel.spawn("b", [&](sim::Context& ctx) {
      for (int i = 0; i < rounds; ++i) {
        ctx.wait(ping);
        ping.reset();
        pong.set();
      }
    });
    kernel.run();
    if (kernel.live_process_count() != 0) {
      state.SkipWithError("ping-pong deadlocked");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * rounds);
}
BENCHMARK(BM_EventPingPong)->Arg(1000);

// Resource churn through a contended FIFO.
void BM_ResourceChurn(benchmark::State& state) {
  const int workers = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Resource resource(kernel, 2);
    for (int w = 0; w < workers; ++w) {
      kernel.spawn("w", [&](sim::Context& ctx) {
        for (int i = 0; i < 50; ++i) {
          sim::ResourceLease lease(ctx, resource);
          ctx.sleep(msec(1));
        }
      });
    }
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * workers * 50);
}
BENCHMARK(BM_ResourceChurn)->Arg(4)->Arg(16);

void BM_StoreThroughput(benchmark::State& state) {
  const int items = int(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Store<int> store(kernel, 64);
    kernel.spawn("producer", [&](sim::Context& ctx) {
      for (int i = 0; i < items; ++i) store.put(ctx, i);
    });
    kernel.spawn("consumer", [&](sim::Context& ctx) {
      for (int i = 0; i < items; ++i) benchmark::DoNotOptimize(store.get(ctx));
    });
    kernel.run();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * items);
}
BENCHMARK(BM_StoreThroughput)->Arg(1000);

// Console reporter that also captures each run's items/sec so main can
// feed the headline numbers (and the fiber/thread ratio) to the report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        items_per_sec[run.benchmark_name()] = double(it->second);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::map<std::string, double> items_per_sec;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  ethergrid::bench::Report report("micro_sim");
  for (const auto& [name, rate] : reporter.items_per_sec) {
    report.metric(name, rate);
  }
  const auto fiber = reporter.items_per_sec.find("BM_SwitchRoundTrip/fiber");
  const auto thread = reporter.items_per_sec.find("BM_SwitchRoundTrip/thread");
  if (fiber != reporter.items_per_sec.end() &&
      thread != reporter.items_per_sec.end() && thread->second > 0) {
    const double ratio = fiber->second / thread->second;
    report.metric("fiber_vs_thread_switch_ratio", ratio);
    report.shape(ratio >= 5.0);  // acceptance: fibers >= 5x thread switches
    std::printf("fiber/thread switch throughput ratio: %.1fx -> %s\n", ratio,
                ratio >= 5.0 ? "OK" : "MISMATCH");
  }

  // Perf gate: with ETHERGRID_BENCH_BASELINE pointing at a baseline
  // BENCH_results.json, the event-queue hot-path benchmarks must hold at
  // least half their recorded items/sec.  These ARE wall-clock numbers, so
  // the threshold is deliberately loose: shared CI runners (and this
  // repo's single-vCPU dev VM) swing 20-75% run to run, and the gate
  // exists to catch the order-of-magnitude regressions an event-queue
  // change can cause (accidental O(n) scheduling, a busted fast path),
  // not single-digit drift.  A skipped benchmark (filtered run) skips its
  // gate.
  const char* baseline_path = std::getenv("ETHERGRID_BENCH_BASELINE");
  int failures = 0;
  if (baseline_path && *baseline_path) {
    for (const char* gated : {"BM_SleepEvents/1000", "BM_SleepEvents/10000",
                              "BM_EventPingPong/1000"}) {
      const auto it = reporter.items_per_sec.find(gated);
      if (it == reporter.items_per_sec.end()) continue;
      const double baseline = ethergrid::bench::Report::read_baseline_metric(
          baseline_path, "micro_sim", gated);
      if (baseline <= 0) continue;
      const double fraction = it->second / baseline;
      report.shape(fraction >= 0.5);
      if (fraction < 0.5) {
        ++failures;
        std::fprintf(stderr,
                     "micro_sim: %s at %.3gx of baseline items/sec "
                     "(baseline %.3g/s, now %.3g/s) breaches the 0.5x gate\n",
                     gated, fraction, baseline, it->second);
      } else {
        std::printf("%s: %.2fx of baseline -> OK\n", gated, fraction);
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
