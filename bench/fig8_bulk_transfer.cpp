// Figure 8: Bulk-transfer goodput and Jain fairness across disciplines.
//
// Beyond the paper: N bulk senders saturate one fluid 10 MiB/s link, each
// moving 32 MiB files under Fixed / Aloha / Ethernet / Reservation.  The
// binary-collision scenarios (figs 1-7) showed Ethernet riding out
// contention; on a fluid link the question becomes *allocation*: Ethernet
// senders all stream at once and split the link thin (per-attempt
// deadlines start starving streams), while Reservation senders negotiate
// non-overlapping (window, rate) grants from the site's book (Chen &
// Primet) and stream at a guaranteed rate.  The claim this figure gates:
// under saturation, Reservation matches-or-beats Ethernet on goodput and
// is at least as fair (Jain index over per-sender bytes).
//
// One report entry per discipline (all named fig8_bulk_transfer,
// distinguished by the "discipline" field); the goodput gate runs against
// ETHERGRID_BENCH_BASELINE.  Goodput is virtual-time bytes/second, so the
// gate is deterministic -- 0.9x is generous for a metric that cannot
// jitter with runner load.
//
// Usage: fig8_bulk_transfer [sender counts...]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

namespace {

const char* const kDisciplines[] = {"fixed", "aloha", "ethernet",
                                    "reservation"};

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> counts = {4, 8, 16};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) counts.push_back(std::atoi(argv[i]));
  }

  exp::BulkScenarioConfig config;  // 10 MiB/s fluid link, 32 MiB files

  exp::Table table(
      "Figure 8: Bulk-transfer goodput (MB/s over 600 s, 10 MiB/s link)",
      {"senders", "fixed", "aloha", "ethernet", "reservation", "jain(eth)",
       "jain(resv)"});

  // Saturating point (largest sweep count) per discipline.
  std::map<std::string, exp::BulkSweepPoint> saturated;
  for (int n : counts) {
    std::fprintf(stderr, "[fig8] running %d senders...\n", n);
    std::map<std::string, exp::BulkSweepPoint> row;
    for (const char* discipline : kDisciplines) {
      row[discipline] = exp::run_bulk_point(config, discipline, n, sec(600));
    }
    table.add_row({exp::Table::cell(n),
                   exp::Table::cell(row["fixed"].goodput_bps / 1e6),
                   exp::Table::cell(row["aloha"].goodput_bps / 1e6),
                   exp::Table::cell(row["ethernet"].goodput_bps / 1e6),
                   exp::Table::cell(row["reservation"].goodput_bps / 1e6),
                   exp::Table::cell(row["ethernet"].jain_fairness),
                   exp::Table::cell(row["reservation"].jain_fairness)});
    saturated = std::move(row);
  }
  table.print();

  const exp::BulkSweepPoint& ether = saturated["ethernet"];
  const exp::BulkSweepPoint& resv = saturated["reservation"];
  std::printf("\nShape check (saturation: Reservation >= Ethernet goodput, "
              ">= Jain fairness):\n");
  const bool goodput_ok = resv.goodput_bps >= ether.goodput_bps;
  const bool fairness_ok = resv.jain_fairness >= ether.jain_fairness;
  std::printf("  goodput: ethernet=%.0f resv=%.0f B/s -> %s\n",
              ether.goodput_bps, resv.goodput_bps,
              goodput_ok ? "OK" : "MISMATCH");
  std::printf("  jain:    ethernet=%.4f resv=%.4f -> %s\n",
              ether.jain_fairness, resv.jain_fairness,
              fairness_ok ? "OK" : "MISMATCH");

  // One entry per discipline; metric keys embed the discipline so the
  // baseline lookup (a forward text scan) is unambiguous.  The entries are
  // metric-only on purpose: goodput/jain are virtual-time numbers, and the
  // Report wall clock (started here, after the sweep) measures nothing.
  double gated_goodput = 0;
  for (const char* discipline : kDisciplines) {
    const exp::BulkSweepPoint& point = saturated[discipline];
    bench::Report report("fig8_bulk_transfer");
    report.set_discipline(discipline);
    report.shape(goodput_ok && fairness_ok);
    report.metric(std::string("goodput_") + discipline, point.goodput_bps);
    report.metric(std::string("jain_") + discipline, point.jain_fairness);
    if (point.grants || point.rejects) {
      report.metric(std::string("grants_") + discipline,
                    double(point.grants));
      report.metric(std::string("rejects_") + discipline,
                    double(point.rejects));
    }
    if (std::string(discipline) == "reservation") {
      gated_goodput = point.goodput_bps;
    }
  }

  int exit_code = goodput_ok && fairness_ok ? 0 : 1;
  if (exit_code != 0) {
    std::fprintf(stderr, "[fig8] SHAPE GATE BREACH: see mismatches above\n");
  }

  // Deterministic goodput gate vs the committed baseline.
  const char* baseline_path = std::getenv("ETHERGRID_BENCH_BASELINE");
  if (baseline_path && *baseline_path) {
    const double baseline = bench::Report::read_baseline_metric(
        baseline_path, "fig8_bulk_transfer", "goodput_reservation");
    if (baseline <= 0) {
      std::printf("Goodput gate: skipped (no goodput_reservation in %s)\n",
                  baseline_path);
    } else if (gated_goodput < 0.9 * baseline) {
      std::fprintf(stderr,
                   "[fig8] GOODPUT GATE BREACH: reservation %.0f B/s < 90%% "
                   "of baseline %.0f B/s\n",
                   gated_goodput, baseline);
      exit_code = 1;
    } else {
      std::printf("Goodput gate: OK (reservation %.0f vs baseline %.0f B/s)\n",
                  gated_goodput, baseline);
    }
  }
  return exit_code;
}
