#!/usr/bin/env bash
# Run the full bench suite and collect one BENCH_results.json.
#
# Usage: bench/run_all.sh [build-dir]           (default: build)
#   ETHERGRID_BENCH_REPORT   override the report path (default ./BENCH_results.json)
#   ETHERGRID_SIM_BACKEND    fiber|thread -- backend for the figure benches
#   ETHERGRID_BENCH_QUICK=1  skip the slow micro suites (fig benches only)
set -euo pipefail

build="${1:-build}"
report="${ETHERGRID_BENCH_REPORT:-BENCH_results.json}"
export ETHERGRID_BENCH_REPORT="$report"

if [[ ! -d "$build/bench" ]]; then
  echo "error: $build/bench not found; build first (cmake -B $build -S . && cmake --build $build -j)" >&2
  exit 1
fi

rm -f "$report"
start=$SECONDS

figs=(
  fig1_submit_scale
  fig2_aloha_timeline
  fig3_ethernet_timeline
  fig4_buffer_throughput
  fig5_buffer_collisions
  fig6_aloha_reader
  fig7_ethernet_reader
  fig8_bulk_transfer
  ablation_jitter
  ablation_backoff_cap
  ablation_carrier_threshold
  ablation_limited_allocation
  ablation_forall_governor
  fidelity_script_vs_api
)

for bin in "${figs[@]}"; do
  echo "=== $bin ==="
  "$build/bench/$bin" > /dev/null
done

if [[ -z "${ETHERGRID_BENCH_QUICK:-}" ]]; then
  echo "=== micro_sim ==="
  "$build/bench/micro_sim" --benchmark_min_time=0.1
  echo "=== micro_shell ==="
  "$build/bench/micro_shell" --benchmark_min_time=0.1 > /dev/null
fi

echo
echo "bench suite wall-clock: $((SECONDS - start)) s"
echo "report: $report"
