// Figure 4: Buffer Throughput.
//
// Paper: producers fill a shared 120 MB filesystem buffer with files of
// unknown size while a consumer drains at 1 MB/s.  "In a manner quite
// similar to that of the first scenario, the fixed and Aloha disciplines do
// not scale.  The Ethernet approach scales acceptably, falling off only
// slightly under heavy load."
//
// Usage: fig4_buffer_throughput [producer counts...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

int main(int argc, char** argv) {
  bench::Report report("fig4_buffer_throughput");
  std::vector<int> counts = {5, 10, 15, 20, 25, 30, 35, 40, 45, 50};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) counts.push_back(std::atoi(argv[i]));
  }

  exp::BufferScenarioConfig config;

  exp::Table table(
      "Figure 4: Buffer Throughput (files consumed in 600 s, 120 MB buffer)",
      {"producers", "fixed", "aloha", "ethernet"});

  std::int64_t sat_fixed = 0, sat_aloha = 0, sat_ethernet = 0;
  for (int n : counts) {
    std::fprintf(stderr, "[fig4] running %d producers...\n", n);
    auto fixed =
        exp::run_buffer_point(config, "fixed", n);
    auto aloha =
        exp::run_buffer_point(config, "aloha", n);
    auto ether =
        exp::run_buffer_point(config, "ethernet", n);
    table.add_row({exp::Table::cell(n),
                   exp::Table::cell(fixed.files_consumed),
                   exp::Table::cell(aloha.files_consumed),
                   exp::Table::cell(ether.files_consumed)});
    if (n >= 35) {  // deep saturation region
      sat_fixed += fixed.files_consumed;
      sat_aloha += aloha.files_consumed;
      sat_ethernet += ether.files_consumed;
    }
    report.add_events(fixed.kernel_events + aloha.kernel_events +
                      ether.kernel_events);
  }
  table.print();

  std::printf(
      "\nShape check (paper: under saturation Ethernet > Aloha > Fixed):\n");
  const bool ordered = sat_ethernet > sat_aloha && sat_aloha >= sat_fixed;
  std::printf("  saturation totals: fixed=%lld aloha=%lld ethernet=%lld -> "
              "%s\n",
              (long long)sat_fixed, (long long)sat_aloha,
              (long long)sat_ethernet, ordered ? "OK" : "MISMATCH");
  report.shape(ordered);
  report.metric("sat_files_ethernet", double(sat_ethernet));
  return 0;
}
