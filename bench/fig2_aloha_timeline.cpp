// Figure 2: Timeline of Aloha Submitter.
//
// Paper: 400 clients continuously submitting for thirty minutes.  "The
// Aloha clients immediately consume all of the FDs then immediately fail
// and backoff. ... At several points, the number of available FDs spikes
// upwards.  This is due to the schedd itself failing when it cannot
// allocate enough FDs.  This, in turn, causes all of its connected clients
// to fail and backoff, serving as sort of a 'broadcast jam'."
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/scenarios.hpp"
#include "exp/table.hpp"
#include "report.hpp"

using namespace ethergrid;

// In our FD model 400 clients x ~20 descriptors sits just below the 8192
// table; the paper's exact per-connection footprint is unknown and theirs
// was just above critical.  We run 420 clients (5% past critical) so the
// crash regime the figure depicts is reproduced; see EXPERIMENTS.md.
int main(int argc, char** argv) {
  bench::Report report("fig2_aloha_timeline");
  const int clients = argc > 1 ? std::atoi(argv[1]) : 420;
  exp::SubmitScenarioConfig config;
  std::fprintf(stderr, "[fig2] %d aloha submitters, 1800 s...\n", clients);
  exp::SubmitterTimeline timeline = exp::run_submitter_timeline(
      config, "aloha", clients, sec(1800), sec(10));

  exp::Table table("Figure 2: Timeline of Aloha Submitter (" +
                       std::to_string(clients) + " clients)",
                   {"t_seconds", "available_fds", "jobs_submitted"});
  for (const auto& p : timeline.points) {
    table.add_row({exp::Table::cell(p.t_seconds),
                   exp::Table::cell(p.available_fds),
                   exp::Table::cell(p.jobs_submitted)});
  }
  table.print();

  // Shape checks from the paper's narrative.
  double min_fds = 1e18;
  int upward_spikes = 0;
  double prev = timeline.points.empty() ? 0 : timeline.points[0].available_fds;
  for (const auto& p : timeline.points) {
    min_fds = std::min(min_fds, p.available_fds);
    if (p.available_fds - prev > 2000) ++upward_spikes;  // broadcast jam
    prev = p.available_fds;
  }
  std::printf("\nTotals: jobs=%lld schedd_crashes=%d\n",
              (long long)timeline.jobs_total, timeline.schedd_crashes);
  std::printf("Shape check: FDs driven near exhaustion (min=%g): %s\n",
              min_fds, min_fds < 500 ? "OK" : "MISMATCH");
  std::printf("Shape check: upward FD spikes from schedd crashes (%d): %s\n",
              upward_spikes,
              (upward_spikes >= 1 && timeline.schedd_crashes >= 1)
                  ? "OK"
                  : "MISMATCH");
  report.add_events(timeline.kernel_events);
  report.shape(min_fds < 500);
  report.shape(upward_spikes >= 1 && timeline.schedd_crashes >= 1);
  report.metric("jobs_total", double(timeline.jobs_total));
  report.metric("schedd_crashes", double(timeline.schedd_crashes));
  return 0;
}
